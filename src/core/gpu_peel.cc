#include "core/gpu_peel.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "core/resilience.h"
#include "cpu/pkc.h"
#include "cpu/xiang.h"
#include "cusim/annotations.h"
#include "cusim/atomics.h"
#include "cusim/warp_scan.h"
#include "graph/renumber.h"

namespace kcore {

namespace {

using sim::AtomicAdd;
using sim::AtomicSub;
using sim::GlobalLoad;
using sim::GlobalStore;
using sim::kWarpSize;
using sim::MemSpace;
using sim::WarpCtx;

/// Device pointers and launch-invariant configuration shared by the kernels
/// of one decomposition run.
struct KernelCtx {
  const EdgeIndex* offsets = nullptr;
  const VertexId* neighbors = nullptr;
  uint32_t* deg = nullptr;
  VertexId* buf = nullptr;       ///< num_blocks * capacity slots.
  uint64_t* buf_e = nullptr;     ///< Per-block buf[i].e handoff (scan->loop).
  uint64_t* gpu_count = nullptr;
  uint32_t* overflow = nullptr;  ///< Sticky overflow flag.
  uint64_t capacity = 0;         ///< Per-block buffer capacity (IDs).
  VertexId num_vertices = 0;
  /// Active-vertex compaction state (mutated by the host between rounds):
  /// when `use_active`, the scan sweeps active[0, active_size) instead of
  /// [0, num_vertices). `active_out`/`active_count` are CompactKernel's
  /// output array and its global append cursor.
  const VertexId* active = nullptr;
  VertexId* active_out = nullptr;
  uint64_t* active_count = nullptr;
  uint64_t active_size = 0;
  bool use_active = false;
  /// Single-k direct mining (GpuSingleKCore): the scan collects deg < k
  /// (every vertex Xiang's algorithm seeds its deletion stack with) instead
  /// of deg == k, and the loop then runs with threshold k-1 — the same
  /// skip/append/rollback boundary shifted by one.
  bool scan_below = false;
  bool ring = false;
  bool sm = false;               ///< Shared-memory buffering enabled.
  uint32_t shared_capacity = 0;  ///< n_B (only when sm).
  AppendStrategy append = AppendStrategy::kAtomic;
  /// Loop-phase expansion granularity (kWarp = the unchanged Alg. 3 path).
  ExpandStrategy expand = ExpandStrategy::kWarp;
  /// kAuto: adjacency length at which a vertex moves to the block bin.
  uint32_t block_threshold = 4096;
};

/// Per-block view of buf[i] implementing the position translation of the
/// paper's Fig. 7 (shared-memory buffer B spliced between the initial scan
/// segment and the rest of the global buffer) plus ring-buffer wrapping.
///
/// The kernels run as both checked and unchecked instantiations, so every
/// counters parameter here (and in the kernels below) is `auto&`: the
/// concrete type — PerfCounters or CheckedPerfCounters — selects the
/// matching accessor overloads in atomics.h.
class KCORE_KERNEL BlockBuffer {
 public:
  BlockBuffer(const KernelCtx& ctx, auto& block, VertexId* shared_b,
              uint64_t e_init)
      : ctx_(ctx),
        base_(static_cast<uint64_t>(block.block_id()) * ctx.capacity),
        shared_b_(shared_b),
        e_init_(e_init) {}

  VertexId Fetch(uint64_t logical, auto& c) const {
    if (ctx_.sm && logical >= e_init_) {
      const uint64_t rel = logical - e_init_;
      if (rel < ctx_.shared_capacity) {
        ++c.shared_ops;
        return shared_b_[rel];
      }
      logical -= ctx_.shared_capacity;
    }
    return GlobalLoad(&ctx_.buf[base_ + Physical(logical)], c);
  }

  /// Appends `v` at logical position `loc`. `observed_s` is the current
  /// consumption point, used for the ring-backlog overflow check.
  void Store(uint64_t loc, VertexId v, uint64_t observed_s, auto& c) const {
    if (ctx_.sm && loc >= e_init_) {
      const uint64_t rel = loc - e_init_;
      if (rel < ctx_.shared_capacity) {
        ++c.shared_ops;
        shared_b_[rel] = v;
        return;
      }
      loc -= ctx_.shared_capacity;
    }
    const uint64_t extra = ctx_.sm ? ctx_.shared_capacity : 0;
    if (ctx_.ring) {
      if (loc + 1 > observed_s + ctx_.capacity + extra) {
        sim::AtomicMax(ctx_.overflow, 1u, c);
        return;
      }
    } else if (loc >= ctx_.capacity) {
      sim::AtomicMax(ctx_.overflow, 1u, c);
      return;
    }
    GlobalStore(&ctx_.buf[base_ + Physical(loc)], v, c);
  }

 private:
  uint64_t Physical(uint64_t pos) const {
    return ctx_.ring ? pos % ctx_.capacity : std::min(pos, ctx_.capacity - 1);
  }

  const KernelCtx& ctx_;
  uint64_t base_;
  VertexId* shared_b_;
  uint64_t e_init_;
};

// ---------------------------------------------------------------------------
// Scan kernel (Algorithm 2): collect degree-k vertices into buf[block].
// ---------------------------------------------------------------------------

KCORE_KERNEL void ScanKernel(const KernelCtx& ctx, uint32_t k, auto& block) {
  auto& c = block.counters();
  // Line 1: thread 0 zeroes e. (`template` keyword: block's type is a
  // template parameter, so the member template call needs the disambiguator.)
  auto* e = block.template SharedAlloc<uint64_t>(1);
  block.Sync();                              // Line 2.

  // With an active list the sweep domain shrinks from [0, n) to the dense
  // survivor array; idx -> vertex goes through one extra global read.
  const uint64_t sweep_len =
      ctx.use_active ? ctx.active_size : ctx.num_vertices;
  auto vertex_at = [&](uint64_t idx) -> VertexId {
    return ctx.use_active ? GlobalLoad(&ctx.active[idx], c)
                          : static_cast<VertexId>(idx);
  };
  // Full peel collects the round's k-shell; single-k mining (scan_below)
  // collects everything already below the survival threshold.
  auto collects = [&](uint32_t dv) {
    return ctx.scan_below ? dv < k : dv == k;
  };
  if (ctx.use_active && block.block_id() == 0) {
    c.scan_vertices_skipped += ctx.num_vertices - ctx.active_size;
  }

  const uint64_t base = static_cast<uint64_t>(block.block_id()) * ctx.capacity;
  const uint64_t grid_threads = block.grid_threads();
  const uint64_t block_first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();

  auto raw_store = [&](uint64_t pos, VertexId v) {
    // Scan starts at logical 0 each round, so the ring cannot recycle yet:
    // more than `capacity` collected vertices is an overflow either way.
    if (pos >= ctx.capacity) {
      sim::AtomicMax(ctx.overflow, 1u, c);
      return;
    }
    GlobalStore(&ctx.buf[base + pos], v, c);
  };

  // Grid-stride sweeps (Lines 3-5): in sweep `s`, this block's threads
  // examine sweep-domain indices [s + block_first, s + block_first +
  // block_dim).
  for (uint64_t s = 0; s < sweep_len; s += grid_threads) {
    const uint64_t sweep_base = s + block_first;
    if (sweep_base >= sweep_len) continue;

    switch (ctx.append) {
      case AppendStrategy::kAtomic: {
        block.ForEachThread([&](uint32_t t) {
          const uint64_t idx = sweep_base + t;
          if (idx >= sweep_len) return;  // Line 5.
          const VertexId v = vertex_at(idx);
          ++c.vertices_scanned;
          const uint32_t dv = GlobalLoad(&ctx.deg[v], c);
          if (collects(dv)) {  // Line 6.
            const uint64_t pos =
                AtomicAdd(e, uint64_t{1}, c, MemSpace::kShared);  // Line 7.
            raw_store(pos, v);                                    // Line 9.
            ++c.buffer_appends;
          }
        });
        break;
      }
      case AppendStrategy::kBallotCompact: {
        // Warp-level compaction (Fig. 8): one shared atomicAdd per warp.
        block.ForEachWarp([&](WarpCtx& warp) {
          uint32_t flags[kWarpSize] = {0};
          VertexId cand[kWarpSize] = {0};
          warp.ForEachLane([&](uint32_t lane) {
            const uint64_t idx =
                sweep_base + warp.warp_id() * kWarpSize + lane;
            if (idx >= sweep_len) return;
            const VertexId v = vertex_at(idx);
            ++c.vertices_scanned;
            if (collects(GlobalLoad(&ctx.deg[v], c))) {
              flags[lane] = 1;
              cand[lane] = v;
            }
          });
          uint32_t exclusive[kWarpSize];
          const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
          if (total == 0) return;
          const uint64_t e_old =
              AtomicAdd(e, uint64_t{total}, c, MemSpace::kShared);
          ++c.shared_ops;  // __shfl_sync broadcast of e_old (Fig. 8 line 5).
          warp.ForEachLane([&](uint32_t lane) {
            if (flags[lane] != 0) {
              raw_store(e_old + exclusive[lane], cand[lane]);
              ++c.buffer_appends;
            }
          });
        });
        break;
      }
      case AppendStrategy::kEfficientCompact: {
        // Block-level two-stage compaction (Fig. 9): one shared atomicAdd
        // per block per sweep.
        const uint32_t dim = block.block_dim();
        std::vector<uint32_t> flags(dim, 0);
        std::vector<VertexId> cand(dim, 0);
        block.ForEachThread([&](uint32_t t) {
          const uint64_t idx = sweep_base + t;
          if (idx >= sweep_len) return;
          const VertexId v = vertex_at(idx);
          ++c.vertices_scanned;
          if (collects(GlobalLoad(&ctx.deg[v], c))) {
            flags[t] = 1;
            cand[t] = v;
          }
        });
        c.shared_ops += dim;  // vid/p staging arrays live in shared memory.
        std::vector<uint32_t> exclusive(dim);
        const uint32_t total =
            BlockExclusiveScan(block, flags.data(), exclusive.data());
        if (total == 0) break;
        const uint64_t e_old =
            AtomicAdd(e, uint64_t{total}, c, MemSpace::kShared);
        block.ForEachThread([&](uint32_t t) {
          if (flags[t] != 0) {
            raw_store(e_old + exclusive[t], cand[t]);
            ++c.buffer_appends;
          }
        });
        break;
      }
    }
  }

  block.Sync();
  // Thread 0 backs e up to global memory for the loop kernel (§IV-B).
  GlobalStore(&ctx.buf_e[block.block_id()], *e, c);
}

// ---------------------------------------------------------------------------
// Compact kernel: rebuild the dense active-vertex array for round k.
// ---------------------------------------------------------------------------

/// Stream-compacts the surviving vertices (deg >= k) of the current sweep
/// domain into ctx.active_out via warp-ballot compaction: each warp ballots
/// its survivors, claims a contiguous range of the output with one global
/// atomicAdd on ctx.active_count, and scatters. Correctness: a vertex
/// peeled in some round j keeps deg == core == j < k forever, while every
/// unpeeled vertex has deg >= k at the start of round k — so the filter
/// keeps exactly the unpeeled vertices and the new array stays a superset
/// of every later round's survivors until the next rebuild.
KCORE_KERNEL void CompactKernel(const KernelCtx& ctx, uint32_t k, auto& block) {
  auto& c = block.counters();
  if (block.block_id() == 0) ++c.compactions;

  const uint64_t src_len = ctx.use_active ? ctx.active_size : ctx.num_vertices;
  const uint64_t grid_threads = block.grid_threads();
  const uint64_t block_first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();

  for (uint64_t s = 0; s < src_len; s += grid_threads) {
    const uint64_t sweep_base = s + block_first;
    if (sweep_base >= src_len) continue;
    block.ForEachWarp([&](WarpCtx& warp) {
      uint32_t flags[kWarpSize] = {0};
      VertexId cand[kWarpSize] = {0};
      warp.ForEachLane([&](uint32_t lane) {
        const uint64_t idx = sweep_base + warp.warp_id() * kWarpSize + lane;
        if (idx >= src_len) return;
        const VertexId v = ctx.use_active
                               ? GlobalLoad(&ctx.active[idx], c)
                               : static_cast<VertexId>(idx);
        if (GlobalLoad(&ctx.deg[v], c) >= k) {
          flags[lane] = 1;
          cand[lane] = v;
        }
      });
      uint32_t exclusive[kWarpSize];
      const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
      if (total == 0) return;
      const uint64_t out_base =
          AtomicAdd(ctx.active_count, uint64_t{total}, c);
      ++c.shared_ops;  // __shfl_sync broadcast of out_base.
      warp.ForEachLane([&](uint32_t lane) {
        if (flags[lane] != 0) {
          // out_base + exclusive < total survivors <= src_len <= n, so the
          // ping-pong output array (n slots) cannot overflow.
          GlobalStore(&ctx.active_out[out_base + exclusive[lane]],
                      cand[lane], c);
        }
      });
    });
  }
}

// ---------------------------------------------------------------------------
// Fused scan+compact kernel: one launch per round replaces the scan and the
// round-boundary CompactKernel (GpuPeelOptions::fuse_scan_compact).
// ---------------------------------------------------------------------------

/// One warp-ballot sweep over the active domain reads each survivor's degree
/// exactly once and routes it to both consumers: deg == k vertices enter
/// this block's frontier buffer (the scan's output, one shared atomicAdd per
/// warp — the BC append discipline, since the sweep is warp-structured
/// either way), and deg > k vertices enter the next active array (the
/// compaction's output, one global atomicAdd per warp). deg < k vertices —
/// peeled in earlier rounds — simply drop out. The strict `> k` survivor
/// filter is safe: at the end of round k's cascade every unpeeled vertex
/// has degree > k (§IV-B), so the next round's sweep domain is still a
/// superset of its survivors, and one round tighter than what the unfused
/// threshold rebuild keeps.
KCORE_KERNEL void FusedScanCompactKernel(const KernelCtx& ctx, uint32_t k,
                                         auto& block) {
  auto& c = block.counters();
  auto* e = block.template SharedAlloc<uint64_t>(1);
  block.Sync();
  if (block.block_id() == 0) ++c.compactions;

  const uint64_t src_len = ctx.use_active ? ctx.active_size : ctx.num_vertices;
  if (ctx.use_active && block.block_id() == 0) {
    c.scan_vertices_skipped += ctx.num_vertices - ctx.active_size;
  }
  const uint64_t base = static_cast<uint64_t>(block.block_id()) * ctx.capacity;
  const uint64_t grid_threads = block.grid_threads();
  const uint64_t block_first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();

  auto raw_store = [&](uint64_t pos, VertexId v) {
    // Same ring-exempt overflow rule as ScanKernel: the buffer starts the
    // round empty, so `capacity` collected vertices is the hard limit.
    if (pos >= ctx.capacity) {
      sim::AtomicMax(ctx.overflow, 1u, c);
      return;
    }
    GlobalStore(&ctx.buf[base + pos], v, c);
  };

  for (uint64_t s = 0; s < src_len; s += grid_threads) {
    const uint64_t sweep_base = s + block_first;
    if (sweep_base >= src_len) continue;
    block.ForEachWarp([&](WarpCtx& warp) {
      uint32_t live_flags[kWarpSize] = {0};
      uint32_t shell_flags[kWarpSize] = {0};
      VertexId cand[kWarpSize] = {0};
      warp.ForEachLane([&](uint32_t lane) {
        const uint64_t idx = sweep_base + warp.warp_id() * kWarpSize + lane;
        if (idx >= src_len) return;
        const VertexId v = ctx.use_active
                               ? GlobalLoad(&ctx.active[idx], c)
                               : static_cast<VertexId>(idx);
        ++c.vertices_scanned;
        const uint32_t dv = GlobalLoad(&ctx.deg[v], c);
        if (dv < k) return;
        cand[lane] = v;
        if (dv == k) {
          shell_flags[lane] = 1;
        } else {
          live_flags[lane] = 1;
        }
      });

      uint32_t exclusive[kWarpSize];
      const uint32_t live_n = BallotExclusiveScan(warp, live_flags, exclusive);
      if (live_n != 0) {
        const uint64_t out_base =
            AtomicAdd(ctx.active_count, uint64_t{live_n}, c);
        ++c.shared_ops;  // __shfl_sync broadcast of out_base.
        warp.ForEachLane([&](uint32_t lane) {
          if (live_flags[lane] != 0) {
            // Bounded exactly like CompactKernel: survivors <= src_len <= n.
            GlobalStore(&ctx.active_out[out_base + exclusive[lane]],
                        cand[lane], c);
          }
        });
      }

      const uint32_t shell_n =
          BallotExclusiveScan(warp, shell_flags, exclusive);
      if (shell_n != 0) {
        const uint64_t e_old =
            AtomicAdd(e, uint64_t{shell_n}, c, MemSpace::kShared);
        ++c.shared_ops;  // __shfl_sync broadcast of e_old.
        warp.ForEachLane([&](uint32_t lane) {
          if (shell_flags[lane] != 0) {
            raw_store(e_old + exclusive[lane], cand[lane]);
            ++c.buffer_appends;
          }
        });
      }
    });
  }

  block.Sync();
  GlobalStore(&ctx.buf_e[block.block_id()], *e, c);
}

// ---------------------------------------------------------------------------
// Loop kernel (Algorithm 3): BFS k-shell propagation from the scanned seeds.
// ---------------------------------------------------------------------------

/// Lines 13-24: one warp processes vertex v's adjacency list in 32-neighbor
/// chunks, decrementing degrees and appending new k-shell vertices.
KCORE_KERNEL void ProcessVertex(const KernelCtx& ctx, uint32_t k,
                                const BlockBuffer& buf, uint64_t* e,
                                const uint64_t* s, WarpCtx& warp,
                   VertexId v, auto& c) {
  uint64_t pos_s = GlobalLoad(&ctx.offsets[v], c);  // Line 13.
  const uint64_t pos_e = GlobalLoad(&ctx.offsets[v + 1], c);

  while (pos_s < pos_e) {  // Lines 14-16.
    warp.SyncWarp();       // Line 15.

    // Per-lane neighbor examination; with compaction enabled the appends of
    // this chunk are batched through a ballot scan instead of per-element
    // shared atomics.
    uint32_t flags[kWarpSize] = {0};
    VertexId appended[kWarpSize] = {0};
    const bool compact = ctx.append != AppendStrategy::kAtomic;

    warp.ForEachLane([&](uint32_t lane) {
      const uint64_t pos = pos_s + lane;  // Line 17.
      if (pos >= pos_e) return;           // Line 18.
      const VertexId u = GlobalLoad(&ctx.neighbors[pos], c);  // Line 19.
      ++c.edges_traversed;
      const uint32_t du = GlobalLoad(&ctx.deg[u], c);
      if (du <= k) return;  // Line 20.
      const uint32_t old = AtomicSub(&ctx.deg[u], 1u, c);  // Line 21.
      if (old == k + 1) {  // Line 22: u just entered the k-shell.
        if (compact) {
          flags[lane] = 1;
          appended[lane] = u;
        } else {
          const uint64_t loc =
              AtomicAdd(e, uint64_t{1}, c, MemSpace::kShared);  // Line 23.
          ++c.shared_ops;  // read of s for the ring-backlog check
          buf.Store(loc, u, *s, c);
          ++c.buffer_appends;
        }
      } else if (old <= k) {
        // Line 24: concurrent decrements overshot; restore so deg[u]
        // converges to core(u) (§IV-B Case 1).
        AtomicAdd(&ctx.deg[u], 1u, c);
      }
    });

    if (compact) {
      uint32_t exclusive[kWarpSize];
      const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
      if (total != 0) {
        const uint64_t e_old =
            AtomicAdd(e, uint64_t{total}, c, MemSpace::kShared);
        ++c.shared_ops;  // broadcast of e_old.
        ++c.shared_ops;  // read of s for the ring-backlog check
        const uint64_t observed_s = *s;
        warp.ForEachLane([&](uint32_t lane) {
          if (flags[lane] != 0) {
            buf.Store(e_old + exclusive[lane], appended[lane], observed_s, c);
            ++c.buffer_appends;
          }
        });
      }
    }
    pos_s += kWarpSize;  // Line 17 (pos_s advance).
  }
}

// ---------------------------------------------------------------------------
// Degree-binned expansion engine (thread / warp / block granularities; see
// DESIGN.md §8). The warp granularity is ProcessVertex above, untouched.
// ---------------------------------------------------------------------------

/// Thread-granularity expansion: one lane owns one small vertex
/// (deg < 32) and peels its whole adjacency, so a warp retires 32 frontier
/// vertices per pass instead of serializing them chunk by chunk. The 32
/// private adjacencies advance in lockstep, which keeps Case-2 appends
/// batchable through the warp ballot scan each step — the same append
/// discipline as ProcessVertex, just transposed.
KCORE_KERNEL void ProcessThreadBin(const KernelCtx& ctx, uint32_t k,
                                   const BlockBuffer& buf, uint64_t* e,
                                   const uint64_t* s, WarpCtx& warp,
                      const VertexId verts[kWarpSize], uint32_t count,
                      auto& c) {
  uint64_t pos[kWarpSize];
  uint64_t end[kWarpSize];
  uint64_t max_len = 0;
  warp.ForEachLane([&](uint32_t lane) {
    if (lane >= count || verts[lane] >= ctx.num_vertices) {
      pos[lane] = end[lane] = 0;  // idle lane / suppressed-overflow garbage
      return;
    }
    pos[lane] = GlobalLoad(&ctx.offsets[verts[lane]], c);
    end[lane] = GlobalLoad(&ctx.offsets[verts[lane] + 1], c);
    max_len = std::max(max_len, end[lane] - pos[lane]);
  });

  const bool compact = ctx.append != AppendStrategy::kAtomic;
  for (uint64_t step = 0; step < max_len; ++step) {
    warp.SyncWarp();  // step boundary (Alg. 3 Line 15 analogue)
    uint32_t flags[kWarpSize] = {0};
    VertexId appended[kWarpSize] = {0};
    warp.ForEachLane([&](uint32_t lane) {
      const uint64_t pos_cur = pos[lane] + step;
      if (pos_cur >= end[lane]) return;  // this lane's adjacency is done
      const VertexId u = GlobalLoad(&ctx.neighbors[pos_cur], c);
      ++c.edges_traversed;
      const uint32_t du = GlobalLoad(&ctx.deg[u], c);
      if (du <= k) return;
      const uint32_t old = AtomicSub(&ctx.deg[u], 1u, c);
      if (old == k + 1) {
        if (compact) {
          flags[lane] = 1;
          appended[lane] = u;
        } else {
          const uint64_t loc =
              AtomicAdd(e, uint64_t{1}, c, MemSpace::kShared);
          ++c.shared_ops;  // read of s for the ring-backlog check
          buf.Store(loc, u, *s, c);
          ++c.buffer_appends;
        }
      } else if (old <= k) {
        AtomicAdd(&ctx.deg[u], 1u, c);  // §IV-B Case 1 rollback
      }
    });
    if (compact) {
      uint32_t exclusive[kWarpSize];
      const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
      if (total != 0) {
        const uint64_t e_old =
            AtomicAdd(e, uint64_t{total}, c, MemSpace::kShared);
        ++c.shared_ops;  // broadcast of e_old.
        ++c.shared_ops;  // read of s for the ring-backlog check
        const uint64_t observed_s = *s;
        warp.ForEachLane([&](uint32_t lane) {
          if (flags[lane] != 0) {
            buf.Store(e_old + exclusive[lane], appended[lane], observed_s, c);
            ++c.buffer_appends;
          }
        });
      }
    }
  }
}

/// Kernel-local staging for block-cooperative batches, sized block_dim once
/// per launch and reused across batches (mirrors the EC scan path's
/// flags/cand arrays, which live in registers/local memory, not shared).
struct BlockExpandScratch {
  std::vector<uint32_t> flags;
  std::vector<uint32_t> exclusive;
  std::vector<VertexId> appended;
};

/// Block-granularity expansion for hubs: every warp of the block
/// cooperatively sweeps v's adjacency in grid-stride block_dim-neighbor
/// batches, and each batch's Case-2 appends are compacted through the
/// block-wide ballot scan (one shared atomicAdd per batch) regardless of
/// the append strategy — per-element shared atomics would re-serialize the
/// very adjacency this bin exists to spread. Barriers are paid lazily: one
/// on entry (all warps arrive; earlier scratch readers are done), then only
/// batches that actually appended run the scan and its trailing barrier —
/// append-free batches ride the entry barrier's ordering for free.
KCORE_KERNEL void ProcessBlockBin(const KernelCtx& ctx, uint32_t k,
                                  const BlockBuffer& buf, uint64_t* e,
                                  const uint64_t* s, auto& block, VertexId v,
                     BlockExpandScratch& scratch, auto& c) {
  const uint64_t pos_s = GlobalLoad(&ctx.offsets[v], c);
  const uint64_t pos_e = GlobalLoad(&ctx.offsets[v + 1], c);
  const uint32_t dim = block.block_dim();
  uint32_t* flags = scratch.flags.data();
  uint32_t* exclusive = scratch.exclusive.data();
  VertexId* appended = scratch.appended.data();

  block.Sync();  // all warps enter the sweep together
  for (uint64_t base = pos_s; base < pos_e; base += dim) {
    std::fill(flags, flags + dim, 0);
    bool any = false;
    block.ForEachWarp([&](WarpCtx& warp) {
      warp.ForEachLane([&](uint32_t lane) {
        const uint32_t slot = warp.warp_id() * kWarpSize + lane;
        const uint64_t pos_cur = base + slot;
        if (pos_cur >= pos_e) return;
        const VertexId u = GlobalLoad(&ctx.neighbors[pos_cur], c);
        ++c.edges_traversed;
        const uint32_t du = GlobalLoad(&ctx.deg[u], c);
        if (du <= k) return;
        const uint32_t old = AtomicSub(&ctx.deg[u], 1u, c);
        if (old == k + 1) {
          flags[slot] = 1;
          appended[slot] = u;
          any = true;
        } else if (old <= k) {
          AtomicAdd(&ctx.deg[u], 1u, c);  // §IV-B Case 1 rollback
        }
      });
    });
    // __syncthreads_or-style early out: batches that appended nothing skip
    // the block scan (the entry barrier's ordering still holds).
    if (!any) continue;
    const uint32_t total = BlockBallotExclusiveScan(block, flags, exclusive);
    const uint64_t e_old = AtomicAdd(e, uint64_t{total}, c, MemSpace::kShared);
    ++c.shared_ops;  // broadcast of e_old.
    ++c.shared_ops;  // read of s for the ring-backlog check
    const uint64_t observed_s = *s;
    block.ForEachThread([&](uint32_t t) {
      if (flags[t] != 0) {
        buf.Store(e_old + exclusive[t], appended[t], observed_s, c);
        ++c.buffer_appends;
      }
    });
    block.Sync();  // stores consumed before the next batch rewrites scratch
  }
}

/// Shared-memory staging for kAuto: only hub vertices cross warps, so only
/// they need a shared list. Thread- and warp-bin vertices are classified
/// and drained inside the warp that fetched them, barrier-free.
struct ExpandShared {
  VertexId* block_list = nullptr;  ///< deg >= block_expand_threshold (hubs)
  uint32_t* block_n = nullptr;     ///< [1] shared append cursor
};

/// Expands one fetched frontier window — `item(i)` yields the window's i-th
/// vertex (a buffer fetch, or a pref[] read under VP) — at the granularity
/// selected by ctx.expand. Pure thread/block strategies send every vertex
/// to their single bin with no classification pass. kAuto classifies each
/// warp's 32-vertex chunk by adjacency length and drains the thread and
/// warp bins in place (no cross-warp traffic, so no barriers); hubs are
/// ballot-compacted into the shared block list and swept cooperatively
/// after one barrier — windows without hubs pay no classification barrier
/// at all.
KCORE_KERNEL void ExpandWindow(const KernelCtx& ctx, uint32_t k,
                               const BlockBuffer& buf, uint64_t* e,
                               const uint64_t* s, auto& block,
                  const ExpandShared& sh, BlockExpandScratch& scratch,
                  auto&& item, uint64_t count, auto& c) {
  if (count == 0) return;
  const uint32_t num_warps = block.num_warps();
  const uint64_t warp_stride = static_cast<uint64_t>(num_warps) * kWarpSize;

  // Drains `n_items` vertices (vert_at(i)) 32-per-warp at thread granularity.
  const auto run_thread_bin = [&](auto&& vert_at, uint64_t n_items) {
    for (uint64_t base = 0; base < n_items; base += warp_stride) {
      block.ForEachWarp([&](WarpCtx& warp) {
        const uint64_t wbase =
            base + static_cast<uint64_t>(warp.warp_id()) * kWarpSize;
        if (wbase >= n_items) return;
        const auto cnt = static_cast<uint32_t>(
            std::min<uint64_t>(kWarpSize, n_items - wbase));
        VertexId verts[kWarpSize] = {0};
        warp.ForEachLane([&](uint32_t lane) {
          if (lane < cnt) verts[lane] = vert_at(wbase + lane);
        });
        ProcessThreadBin(ctx, k, buf, e, s, warp, verts, cnt, c);
      });
    }
  };
  switch (ctx.expand) {
    case ExpandStrategy::kThread:
      c.loop_bin_thread += count;
      run_thread_bin(item, count);
      return;
    case ExpandStrategy::kBlock:
      c.loop_bin_block += count;
      for (uint64_t i = 0; i < count; ++i) {
        const VertexId v = item(i);  // lane 0 fetches, implicit broadcast
        if (v >= ctx.num_vertices) continue;
        ProcessBlockBin(ctx, k, buf, e, s, block, v, scratch, c);
      }
      return;
    case ExpandStrategy::kWarp:  // LoopKernel's unchanged path, not here
    case ExpandStrategy::kAuto:
      break;
  }

  // kAuto: each warp classifies its own 32-vertex chunk by adjacency length
  // and drains the small bins in place. The shared block_n cursor starts
  // zeroed (SharedAlloc zero-fills; after a hub window the drain resets it
  // below, and the outer window barrier orders the reset against the next
  // window's appends).
  for (uint64_t base = 0; base < count; base += warp_stride) {
    block.ForEachWarp([&](WarpCtx& warp) {
      const uint64_t wbase =
          base + static_cast<uint64_t>(warp.warp_id()) * kWarpSize;
      if (wbase >= count) return;
      uint32_t thread_flags[kWarpSize] = {0};
      uint32_t warp_flags[kWarpSize] = {0};
      uint32_t block_flags[kWarpSize] = {0};
      VertexId cand[kWarpSize] = {0};
      warp.ForEachLane([&](uint32_t lane) {
        const uint64_t idx = wbase + lane;
        if (idx >= count) return;
        const VertexId v = item(idx);
        if (v >= ctx.num_vertices) return;  // see LoopKernel's OOB comment
        cand[lane] = v;
        const uint64_t adj_s = GlobalLoad(&ctx.offsets[v], c);
        const uint64_t adj_e = GlobalLoad(&ctx.offsets[v + 1], c);
        const uint64_t len = adj_e - adj_s;
        if (len < kWarpSize) {
          thread_flags[lane] = 1;
        } else if (len < ctx.block_threshold) {
          warp_flags[lane] = 1;
        } else {
          block_flags[lane] = 1;
        }
      });

      // Thread bin: ballot-compact the small vertices into a dense local
      // batch and peel all of them in one lockstep pass.
      uint32_t exclusive[kWarpSize];
      const uint32_t thread_n =
          BallotExclusiveScan(warp, thread_flags, exclusive);
      if (thread_n != 0) {
        VertexId verts[kWarpSize] = {0};
        warp.ForEachLane([&](uint32_t lane) {
          if (thread_flags[lane] != 0) verts[exclusive[lane]] = cand[lane];
        });
        c.loop_bin_thread += thread_n;
        ProcessThreadBin(ctx, k, buf, e, s, warp, verts, thread_n, c);
      }

      // Hubs: ballot-compact into the shared block list for the cooperative
      // sweep after the window barrier.
      const uint32_t hub_n = BallotExclusiveScan(warp, block_flags, exclusive);
      if (hub_n != 0) {
        const uint32_t off =
            AtomicAdd(sh.block_n, hub_n, c, MemSpace::kShared);
        ++c.shared_ops;  // broadcast of off.
        warp.ForEachLane([&](uint32_t lane) {
          if (block_flags[lane] != 0) {
            sh.block_list[off + exclusive[lane]] = cand[lane];
            ++c.shared_ops;
          }
        });
      }

      // Warp bin: everything mid-sized runs the paper's Alg. 3 path as-is.
      for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        if (warp_flags[lane] == 0) continue;
        ++c.loop_bin_warp;
        ProcessVertex(ctx, k, buf, e, s, warp, cand[lane], c);
      }
    });
  }

  block.Sync();  // hub list complete before the cooperative sweep
  const uint32_t block_n = *sh.block_n;
  ++c.shared_ops;
  if (block_n == 0) return;
  c.loop_bin_block += block_n;
  for (uint32_t i = 0; i < block_n; ++i) {
    ++c.shared_ops;
    const VertexId v = sh.block_list[i];
    ProcessBlockBin(ctx, k, buf, e, s, block, v, scratch, c);
  }
  // Reset the cursor for the next window; ProcessBlockBin's entry barrier
  // already separated this write from the block_n reads above, and the next
  // window's opening barrier orders it against new appends.
  *sh.block_n = 0;
  ++c.shared_ops;
}

/// Degree-binned loop kernel (thread / block / auto strategies; the warp
/// strategy keeps LoopKernel below, instruction for instruction). Window
/// structure mirrors LoopKernel, but one iteration consumes up to
/// block_dim() frontier vertices instead of one per warp, so on
/// small-degree frontiers the barrier-dominated iteration count drops by
/// ~num_warps while the expansion engine spreads whatever the window holds
/// across lane, warp, and block granularity.
KCORE_KERNEL void LoopKernelBinned(const KernelCtx& ctx, uint32_t k,
                                   bool vertex_prefetching, auto& block) {
  auto& c = block.counters();
  const uint32_t num_warps = block.num_warps();
  const uint32_t dim = block.block_dim();

  auto* s = block.template SharedAlloc<uint64_t>(1);
  auto* e = block.template SharedAlloc<uint64_t>(1);
  VertexId* shared_b =
      ctx.sm ? block.template SharedAlloc<VertexId>(ctx.shared_capacity)
             : nullptr;
  VertexId* pref = vertex_prefetching
                       ? block.template SharedAlloc<VertexId>(num_warps)
                       : nullptr;
  VertexId* pref_next = vertex_prefetching
                            ? block.template SharedAlloc<VertexId>(num_warps)
                            : nullptr;
  ExpandShared sh;
  if (ctx.expand == ExpandStrategy::kAuto) {
    sh.block_list = block.template SharedAlloc<VertexId>(dim);
    sh.block_n = block.template SharedAlloc<uint32_t>(1);
  }
  BlockExpandScratch scratch;
  if (ctx.expand != ExpandStrategy::kThread) {
    scratch.flags.assign(dim, 0);
    scratch.exclusive.assign(dim, 0);
    scratch.appended.assign(dim, 0);
  }

  *s = 0;
  *e = GlobalLoad(&ctx.buf_e[block.block_id()], c);  // Line 2.
  const uint64_t e_init = *e;
  BlockBuffer buf(ctx, block, shared_b, e_init);

  uint64_t pref_count = 0;

  while (true) {
    block.Sync();  // Line 4.
    const uint64_t cur_s = *s;
    const uint64_t cur_e = *e;
    c.shared_ops += 2 * dim;  // every thread reads s and e.

    if (!vertex_prefetching) {
      if (cur_s == cur_e) break;  // Line 5.
      block.Sync();
      const uint64_t window = std::min<uint64_t>(dim, cur_e - cur_s);
      *s = cur_s + window;
      ++c.shared_ops;
      ExpandWindow(
          ctx, k, buf, e, s, block, sh, scratch,
          [&](uint64_t i) { return buf.Fetch(cur_s + i, c); }, window, c);
    } else {
      // VP composition: Warp 0 prefetches the next batch into pref_next
      // (then joins the expansion — every barrier inside the engine is
      // block-wide), while the engine drains the previously fetched batch
      // at binned granularity. The batch no longer maps one-to-one onto
      // processing warps, but the prefetch depth stays at Warp 0's lane
      // count, so the window is at most num_warps - 1 vertices.
      if (pref_count == 0 && cur_s == cur_e) break;
      block.Sync();  // Line 7 analogue.
      const uint64_t nfetch =
          std::min<uint64_t>(num_warps - 1, cur_e - cur_s);
      block.ForEachWarp([&](WarpCtx& warp) {
        if (warp.warp_id() != 0) return;
        warp.SyncWarp();
        warp.ForEachLane([&](uint32_t lane) {
          if (lane >= 1 && lane <= nfetch) {
            pref_next[lane - 1] = buf.Fetch(cur_s + lane - 1, c);
            ++c.shared_ops;
          }
        });
      });
      ExpandWindow(
          ctx, k, buf, e, s, block, sh, scratch,
          [&](uint64_t i) {
            ++c.shared_ops;
            return pref[i];
          },
          pref_count, c);
      *s = cur_s + nfetch;
      ++c.shared_ops;
      std::swap_ranges(pref, pref + num_warps, pref_next);
      pref_count = nfetch;
    }
  }

  block.Sync();  // Line 25.
  AtomicAdd(ctx.gpu_count, *e, c);
}

KCORE_KERNEL void LoopKernel(const KernelCtx& ctx, uint32_t k,
                             bool vertex_prefetching, auto& block) {
  auto& c = block.counters();
  const uint32_t num_warps = block.num_warps();

  // Shared state: buffer head/tail (Lines 1-2) + optional SM buffer B and
  // the VP prefetch array.
  auto* s = block.template SharedAlloc<uint64_t>(1);
  auto* e = block.template SharedAlloc<uint64_t>(1);
  VertexId* shared_b =
      ctx.sm ? block.template SharedAlloc<VertexId>(ctx.shared_capacity)
             : nullptr;
  VertexId* pref = vertex_prefetching
                       ? block.template SharedAlloc<VertexId>(num_warps)
                       : nullptr;
  VertexId* pref_next = vertex_prefetching
                            ? block.template SharedAlloc<VertexId>(num_warps)
                            : nullptr;

  *s = 0;
  *e = GlobalLoad(&ctx.buf_e[block.block_id()], c);  // Line 2.
  const uint64_t e_init = *e;
  BlockBuffer buf(ctx, block, shared_b, e_init);

  uint64_t pref_count = 0;

  while (true) {
    block.Sync();  // Line 4.
    const uint64_t cur_s = *s;
    const uint64_t cur_e = *e;
    c.shared_ops += 2 * block.block_dim();  // every thread reads s and e.

    if (!vertex_prefetching) {
      if (cur_s == cur_e) break;  // Line 5.
      // Line 6 computed per warp below; Line 7 barrier:
      block.Sync();
      // Lines 9-10: thread 0 advances s for the next iteration.
      *s = std::min(cur_s + num_warps, cur_e);
      ++c.shared_ops;
      block.ForEachWarp([&](WarpCtx& warp) {
        const uint64_t sp = cur_s + warp.warp_id();  // Line 6.
        if (sp >= cur_e) return;                     // Line 8: continue.
        const VertexId v = buf.Fetch(sp, c);         // Line 12.
        // Defensive: a suppressed overflow store leaves garbage behind; the
        // host aborts on the flag, but this kernel must not read OOB first.
        if (v >= ctx.num_vertices) return;
        ++c.loop_bin_warp;  // uncharged meter; see PerfCounters
        ProcessVertex(ctx, k, buf, e, s, warp, v, c);
      });
    } else {
      // VP variant: warps 1..31 process the batch prefetched in the
      // previous iteration while Warp 0 fetches the next one (§IV-C).
      if (pref_count == 0 && cur_s == cur_e) break;
      block.Sync();  // Line 7 analogue.
      const uint64_t nfetch =
          std::min<uint64_t>(num_warps - 1, cur_e - cur_s);
      block.ForEachWarp([&](WarpCtx& warp) {
        if (warp.warp_id() == 0) {
          // Lane 0 advances s; __syncwarp; lanes 1.. fetch into pref_next.
          warp.SyncWarp();
          warp.ForEachLane([&](uint32_t lane) {
            if (lane >= 1 && lane <= nfetch) {
              pref_next[lane - 1] = buf.Fetch(cur_s + lane - 1, c);
              ++c.shared_ops;
            }
          });
          return;
        }
        const uint32_t slot = warp.warp_id() - 1;
        if (slot >= pref_count) return;
        const VertexId v = pref[slot];
        ++c.shared_ops;
        if (v >= ctx.num_vertices) return;  // see non-VP path comment
        ++c.loop_bin_warp;  // uncharged meter; see PerfCounters
        ProcessVertex(ctx, k, buf, e, s, warp, v, c);
      });
      *s = cur_s + nfetch;
      ++c.shared_ops;
      std::swap_ranges(pref, pref + num_warps, pref_next);
      pref_count = nfetch;
    }
  }

  block.Sync();  // Line 25.
  // Line 26: thread 0 adds this block's removed-vertex count to gpu_count.
  AtomicAdd(ctx.gpu_count, *e, c);
}

/// Launch-geometry and variant-compatibility validation shared by the full
/// decomposer and the single-k driver (both launch the same kernels, so the
/// same constraints apply).
Status ValidateGpuPeelOptions(const GpuPeelOptions& opt,
                              const sim::Device& device) {
  if (opt.num_blocks == 0 || opt.block_dim == 0 || opt.block_dim % 32 != 0) {
    return Status::InvalidArgument("block_dim must be a positive multiple of 32");
  }
  if (opt.block_dim / 32 > 32 &&
      opt.append == AppendStrategy::kEfficientCompact) {
    return Status::InvalidArgument(
        "EC block scan requires at most 32 warps per block");
  }
  if (opt.vertex_prefetching &&
      (opt.block_dim / 32 < 2 || opt.block_dim / 32 > 32)) {
    return Status::InvalidArgument(
        "vertex prefetching needs 2..32 warps per block (Warp 0's 32 lanes "
        "must cover the other warps)");
  }
  if ((opt.expand_strategy == ExpandStrategy::kBlock ||
       opt.expand_strategy == ExpandStrategy::kAuto) &&
      opt.block_dim / 32 > 32) {
    return Status::InvalidArgument(
        "block-cooperative expansion requires at most 32 warps per block "
        "(the block ballot scan stages one warp total per lane)");
  }
  if (opt.expand_strategy == ExpandStrategy::kAuto &&
      opt.block_expand_threshold < kWarpSize) {
    return Status::InvalidArgument(
        "block_expand_threshold must be >= 32 (the warp bin starts there)");
  }
  // kAuto stages one block_dim-sized hub list (+ cursor) in shared memory,
  // on top of whatever SM buffering claims.
  const uint64_t expand_shared_bytes =
      opt.expand_strategy == ExpandStrategy::kAuto
          ? static_cast<uint64_t>(opt.block_dim) * sizeof(VertexId) +
                sizeof(uint32_t)
          : 0;
  if (opt.shared_memory_buffering &&
      static_cast<uint64_t>(opt.shared_buffer_capacity) * sizeof(VertexId) +
              expand_shared_bytes + 4096 >
          device.options().shared_mem_per_block) {
    return Status::InvalidArgument("shared buffer B exceeds shared memory");
  }
  if (expand_shared_bytes + 4096 > device.options().shared_mem_per_block) {
    return Status::InvalidArgument(
        "auto-expansion bin lists exceed shared memory (reduce block_dim)");
  }
  if (opt.active_compaction && (opt.compaction_threshold < 0.0 ||
                                opt.compaction_threshold > 1.0)) {
    return Status::InvalidArgument(
        "compaction_threshold must be a fraction in [0, 1]");
  }
  if (opt.fuse_scan_compact && !opt.active_compaction) {
    return Status::InvalidArgument(
        "scan->compact fusion requires active compaction (the fused kernel "
        "IS the compaction; there is no unfused scan to fall back to)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<DecomposeResult> GpuPeelDecomposer::Decompose(const CsrGraph& graph) {
  const GpuPeelOptions& opt = options_;
  if (opt.renumber) {
    // Degree-ordered renumbering wrap: remap the graph, run the entire
    // pipeline (validation, resilience, compaction, fusion — everything) on
    // the relabeled CSR with `renumber` cleared, then permute the core
    // numbers back to the original IDs. Core numbers are label-invariant,
    // so the result is bit-identical to an unrenumbered run. The remap is
    // host-side preprocessing, amortizable across queries on a static
    // graph: its cost lands in wall_ms only — the modeled device clock
    // never sees it.
    WallTimer total;
    // Stripe at block_dim: the scan hands each block_dim-wide ID window to
    // one block, so dealing degree ranks round-robin across windows spreads
    // the hubs over all blocks' frontier buffers.
    const Renumbering rn = DegreeOrderRenumber(graph, opt.block_dim);
    GpuPeelOptions inner_options = opt;
    inner_options.renumber = false;
    GpuPeelDecomposer inner(device_, inner_options);
    KCORE_ASSIGN_OR_RETURN(DecomposeResult result, inner.Decompose(rn.graph));
    result.core = rn.ToOriginal(result.core);
    result.metrics.wall_ms = total.ElapsedMillis();
    return result;
  }
  KCORE_RETURN_IF_ERROR(ValidateGpuPeelOptions(opt, *device_));

  WallTimer timer;
  const VertexId n = graph.NumVertices();
  device_->ResetClock();

  // Resilience engages only when the device carries a fault plan; a plain
  // device runs the fast path below with zero recovery overhead.
  const bool resilient =
      opt.resilience.enabled && device_->fault_injection_enabled();

  const uint64_t capacity =
      opt.buffer_capacity != 0
          ? opt.buffer_capacity
          : std::max<uint64_t>(4096, static_cast<uint64_t>(n) / 4);

  DecomposeResult result;

  // Loop-phase imbalance accumulators: per loop launch, the slowest block's
  // modeled ns and the mean over the blocks whose frontier buffer held work
  // at launch (Device::last_launch_stats + the host-visible buf_e snapshot;
  // idle blocks only measure the kernel's fixed floor, not balance). Their
  // ratio — time-weighted over every loop launch — is
  // Metrics.loop_imbalance. Reading the stats charges nothing.
  double loop_max_ns = 0.0;
  double loop_mean_ns = 0.0;
  const auto finish_loop_imbalance = [&]() {
    result.metrics.loop_imbalance =
        loop_mean_ns > 0.0 ? loop_max_ns / loop_mean_ns : 0.0;
  };

  // Bounded retry for transient (Unavailable) device failures. A failed
  // launch/copy is fail-stop — no side effects — so re-issuing the same
  // operation is always safe.
  const auto with_retry = [&](auto&& op) -> Status {
    Status st = op();
    if (!resilient) return st;
    // With profiling on, an absorbed transient draws a flow arrow from the
    // first failure to the attempt that cleared it (nsys shows retried
    // launches the same way).
    sim::SimProfiler* const prof = device_->profiler();
    uint64_t flow_id = 0;
    for (uint32_t attempt = 0;
         st.IsUnavailable() && attempt < opt.resilience.max_op_retries;
         ++attempt) {
      ++result.metrics.retries;
      if (prof != nullptr && flow_id == 0) {
        flow_id = prof->FlowBegin("retry");
      }
      if (opt.resilience.backoff_base_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<uint64_t>(opt.resilience.backoff_base_ms) << attempt));
      }
      st = op();
    }
    if (prof != nullptr && flow_id != 0) {
      prof->FlowEnd(st.ok() ? "retry" : "retry_exhausted", flow_id);
    }
    return st;
  };

  // The round-boundary checkpoint: the verified degree array (which doubles
  // as the initial host->device upload), the cumulative removed count, and
  // implicitly the current k. Also the hand-off state for the CPU fallback.
  std::vector<uint32_t> ckpt_deg = graph.DegreeArray();
  uint64_t ckpt_count = 0;

  // Algorithm 1 Line 1: move the graph (offset/neighbors/deg) to the device.
  // The CSR arrays and the block buffers are fully overwritten before any
  // read (the host copies the graph in; buf slots are stored before being
  // fetched; buf_e is written by every scan before the loop reads it), so
  // they use the uninitialized-alloc path and skip the O(bytes) zeroing
  // memset — only the accumulators (count, overflow) need zeroed memory.
  sim::DeviceArray<EdgeIndex> d_offsets;
  sim::DeviceArray<VertexId> d_neighbors;
  sim::DeviceArray<uint32_t> d_deg;
  sim::DeviceArray<VertexId> d_buf;
  sim::DeviceArray<uint64_t> d_buf_e;
  sim::DeviceArray<uint64_t> d_count;
  sim::DeviceArray<uint32_t> d_overflow;
  // AC ping-pong arrays: compaction reads the previous active list (or the
  // implicit [0, n) identity) and writes the other array.
  sim::DeviceArray<VertexId> d_active_a;
  sim::DeviceArray<VertexId> d_active_b;
  sim::DeviceArray<uint64_t> d_active_count;

  const auto setup = [&]() -> Status {
    KCORE_ASSIGN_OR_RETURN(d_offsets, device_->AllocUninit<EdgeIndex>(
                                          graph.offsets().size(), "offsets"));
    KCORE_ASSIGN_OR_RETURN(
        d_neighbors,
        device_->AllocUninit<VertexId>(
            std::max<size_t>(1, graph.neighbors().size()), "neighbors"));
    KCORE_ASSIGN_OR_RETURN(
        d_deg,
        device_->AllocUninit<uint32_t>(std::max<VertexId>(1, n), "deg"));
    KCORE_ASSIGN_OR_RETURN(
        d_buf,
        device_->AllocUninit<VertexId>(
            static_cast<uint64_t>(opt.num_blocks) * capacity, "buf"));
    KCORE_ASSIGN_OR_RETURN(
        d_buf_e, device_->AllocUninit<uint64_t>(opt.num_blocks, "buf_e"));
    KCORE_ASSIGN_OR_RETURN(d_count, device_->Alloc<uint64_t>(1, "count"));
    KCORE_ASSIGN_OR_RETURN(d_overflow, device_->Alloc<uint32_t>(1, "overflow"));
    if (opt.active_compaction) {
      KCORE_ASSIGN_OR_RETURN(
          d_active_a, device_->AllocUninit<VertexId>(std::max<VertexId>(1, n),
                                                     "active_a"));
      KCORE_ASSIGN_OR_RETURN(
          d_active_b, device_->AllocUninit<VertexId>(std::max<VertexId>(1, n),
                                                     "active_b"));
      KCORE_ASSIGN_OR_RETURN(d_active_count,
                             device_->Alloc<uint64_t>(1, "active_count"));
    }
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_offsets.CopyFromHost(graph.offsets()); }));
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return d_neighbors.CopyFromHost(graph.neighbors()); }));
    KCORE_RETURN_IF_ERROR(with_retry([&] {
      return d_deg.CopyFromHost(std::span<const uint32_t>(ckpt_deg));
    }));
    return Status::OK();
  };

  // Finishes the decomposition on CPU PKC from the last verified checkpoint
  // (graceful degradation). The warm start consumes ckpt_deg; the combined
  // core numbers equal what an undisturbed run would produce.
  const auto cpu_finish = [&](const Status& cause,
                              uint32_t start_k) -> DecomposeResult {
    WallTimer recovery;
    if (sim::SimProfiler* const prof = device_->profiler()) {
      prof->Mark(StrFormat("cpu_fallback k=%u", start_k));
    }
    result.metrics.degraded = true;
    if (cause.IsDeviceLost()) ++result.metrics.devices_lost;
    DecomposeResult cpu = ResumePkc(graph, std::move(ckpt_deg), start_k);
    result.core = std::move(cpu.core);
    result.metrics.cpu_fallback_levels = cpu.metrics.rounds;
    result.metrics.rounds += cpu.metrics.rounds;
    result.metrics.counters = device_->totals();
    result.metrics.counters += cpu.metrics.counters;
    result.metrics.modeled_ms = device_->modeled_ms() + cpu.metrics.modeled_ms;
    result.metrics.peak_device_bytes = device_->peak_bytes();
    result.metrics.recovery_ms += recovery.ElapsedMillis();
    finish_loop_imbalance();
    result.metrics.wall_ms = timer.ElapsedMillis();
    return result;
  };

  if (Status st = setup(); !st.ok()) {
    // Device unusable before any peeling (e.g. injected cudaMalloc OOM):
    // the checkpoint is still the initial degree array, so the fallback is
    // a plain CPU decomposition.
    if (resilient && opt.resilience.cpu_fallback &&
        (st.IsOutOfMemory() || st.IsUnavailable() || st.IsDeviceLost())) {
      return cpu_finish(st, /*start_k=*/0);
    }
    return st;
  }
  // Opt deg[] into injected bitflips: it is the one array the checkpoint
  // protocol can validate and roll back. Topology stays ECC-protected (see
  // fault_injection.h).
  device_->MarkCorruptible(d_deg, "deg");
  if (!resilient) {
    ckpt_deg.clear();
    ckpt_deg.shrink_to_fit();
  }

  KernelCtx ctx;
  ctx.offsets = d_offsets.data();
  ctx.neighbors = d_neighbors.data();
  ctx.deg = d_deg.data();
  ctx.buf = d_buf.data();
  ctx.buf_e = d_buf_e.data();
  ctx.gpu_count = d_count.data();
  ctx.overflow = d_overflow.data();
  ctx.capacity = capacity;
  ctx.num_vertices = n;
  ctx.ring = opt.ring_buffer;
  ctx.sm = opt.shared_memory_buffering;
  ctx.shared_capacity = opt.shared_buffer_capacity;
  ctx.append = opt.append;
  ctx.expand = opt.expand_strategy;
  ctx.block_threshold = opt.block_expand_threshold;

  uint64_t count = 0;  // Algorithm 1 Line 2.
  uint32_t k = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;

  // Next CompactKernel output; swapped with the live active array after
  // each rebuild.
  VertexId* active_next = d_active_a.data();
  VertexId* active_live = d_active_b.data();

  // Attribute the modeled clock to pipeline phases: `charge` banks the time
  // elapsed since the previous mark into one phase accumulator.
  double phase_mark = device_->modeled_ms();
  const auto charge = [&](double& phase_ms) {
    const double now = device_->modeled_ms();
    phase_ms += now - phase_mark;
    phase_mark = now;
  };

  // One peeling round (Lines 5-9), ending — in resilient mode — with the
  // post-round validation against the checkpoint. Fills `post_deg` with the
  // validated state so a passing round can promote it to the new checkpoint
  // without a second device read.
  std::vector<uint32_t> post_deg;
  const auto run_level = [&]() -> Status {
    sim::SimProfiler* const prof = device_->profiler();
    if (opt.fuse_scan_compact) {
      // Fused path: one launch per round replaces the scan and the
      // round-boundary compaction. The kernel routes each surviving
      // vertex's degree to both consumers (deg == k -> frontier buffers,
      // deg > k -> next active array), so the active list shrinks every
      // round instead of at threshold halvings and the separate compact
      // launch disappears. The whole launch is charged to scan_ms — it is
      // the scan, with the compaction riding on its already-paid degree
      // reads.
      sim::ProfRange fused_range(prof, "fused_scan");
      const uint64_t zero = 0;
      KCORE_RETURN_IF_ERROR(
          with_retry([&] { return d_active_count.CopyFromHost({&zero, 1}); }));
      ctx.active_out = active_next;
      ctx.active_count = d_active_count.data();
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return device_->Launch(
            opt.num_blocks, opt.block_dim, "fused_scan",
            [&](auto& block) { FusedScanCompactKernel(ctx, k, block); });
      }));
      charge(result.metrics.scan_ms);
      uint64_t active_size = 0;
      KCORE_RETURN_IF_ERROR(with_retry(
          [&] { return d_active_count.CopyToHost({&active_size, 1}); }));
      ctx.active = active_next;
      ctx.active_size = active_size;
      ctx.use_active = true;
      std::swap(active_next, active_live);
    } else {
      if (opt.active_compaction) {
        // Rebuild the active array once the survivors have shrunk below the
        // threshold fraction of the current sweep domain (first time vs. n,
        // then vs. the active array itself — i.e. at every further halving
        // for the default 0.5).
        const uint64_t remaining = n - count;
        const uint64_t sweep_len = ctx.use_active ? ctx.active_size : n;
        if (static_cast<double>(remaining) <
            opt.compaction_threshold * static_cast<double>(sweep_len)) {
          sim::ProfRange compact_range(prof, "compact");
          const uint64_t zero = 0;
          KCORE_RETURN_IF_ERROR(with_retry(
              [&] { return d_active_count.CopyFromHost({&zero, 1}); }));
          ctx.active_out = active_next;
          ctx.active_count = d_active_count.data();
          KCORE_RETURN_IF_ERROR(with_retry([&] {
            return device_->Launch(
                opt.num_blocks, opt.block_dim, "compact",
                [&](auto& block) { CompactKernel(ctx, k, block); });
          }));
          charge(result.metrics.compact_ms);
          uint64_t active_size = 0;
          KCORE_RETURN_IF_ERROR(with_retry(
              [&] { return d_active_count.CopyToHost({&active_size, 1}); }));
          ctx.active = active_next;
          ctx.active_size = active_size;
          ctx.use_active = true;
          std::swap(active_next, active_live);
        }
      }

      sim::ProfRange scan_range(prof, "scan");
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return device_->Launch(opt.num_blocks, opt.block_dim, "scan",
                               [&](auto& block) {
                                 ScanKernel(ctx, k, block);  // Line 6.
                               });
      }));
      charge(result.metrics.scan_ms);
    }
    const bool vp = opt.vertex_prefetching;
    const bool binned = opt.expand_strategy != ExpandStrategy::kWarp;
    // Snapshot per-block frontier occupancy before the launch (the loop
    // kernel never writes buf_e back): host-side instrumentation, uncharged.
    std::vector<bool> block_had_work(opt.num_blocks);
    bool any_work = false;
    for (uint32_t b = 0; b < opt.num_blocks; ++b) {
      block_had_work[b] = ctx.buf_e[b] != 0;
      any_work = any_work || block_had_work[b];
    }
    if (opt.fuse_scan_compact && !any_work) {
      // Empty k-shell: every block's frontier buffer came up empty, so the
      // loop launch would only spin its fixed-cost drain loop and add
      // nothing to gpu_count. Skipping it is bit-identical (deg and count
      // are untouched either way) and is where fusion's launch savings
      // concentrate on high-k_max graphs — the many empty rounds between
      // the shell tail and the densest core cost one launch instead of two.
      if (prof != nullptr) prof->Mark(StrFormat("loop_skipped k=%u", k));
    } else {
      std::optional<sim::ProfRange> loop_range;
      if (prof != nullptr) loop_range.emplace(prof, "loop");
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return device_->Launch(opt.num_blocks, opt.block_dim, "loop",
                               [&](auto& block) {
                                 if (binned) {
                                   LoopKernelBinned(ctx, k, vp, block);
                                 } else {
                                   LoopKernel(ctx, k, vp, block);  // Line 7.
                                 }
                               });
      }));
      {
        const auto& stats = device_->last_launch_stats();
        double sum_active = 0.0;
        uint32_t num_active = 0;
        for (uint32_t b = 0;
             b < opt.num_blocks && b < stats.block_ns.size(); ++b) {
          if (!block_had_work[b]) continue;
          sum_active += stats.block_ns[b];
          ++num_active;
        }
        if (num_active > 0) {
          loop_max_ns += stats.max_block_ns;
          loop_mean_ns += sum_active / num_active;
        }
      }
      charge(result.metrics.loop_ms);
      loop_range.reset();
    }

    uint32_t overflow = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_overflow.CopyToHost({&overflow, 1}); }));
    if (overflow != 0) {
      return Status::CapacityExceeded(StrFormat(
          "block buffer overflow in round k=%u (capacity %llu IDs%s)", k,
          static_cast<unsigned long long>(capacity),
          opt.ring_buffer ? ", ring" : ""));
    }
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_count.CopyToHost({&count, 1}); }));  // L8.
    if (resilient) {
      sim::ProfRange validate_range(prof, "validate");
      post_deg.resize(n);
      KCORE_RETURN_IF_ERROR(with_retry(
          [&] { return d_deg.CopyToHost(std::span<uint32_t>(post_deg)); }));
      WallTimer validate;
      std::string why;
      const bool valid = ValidatePeelRound(graph, ckpt_deg, post_deg, k,
                                           count, &why);
      result.metrics.recovery_ms += validate.ElapsedMillis();
      if (!valid) return Status::Corruption(why);
    }
    return Status::OK();
  };

  // Restores the device to the last verified checkpoint after corruption
  // (or corruption-suspect overflow): degree array, cumulative count, and
  // overflow flag. The active-vertex array may have been built from
  // corrupted degrees, so it is invalidated; the threshold logic rebuilds
  // it from clean state on the next round.
  const auto rollback = [&]() -> Status {
    KCORE_RETURN_IF_ERROR(with_retry([&] {
      return d_deg.CopyFromHost(std::span<const uint32_t>(ckpt_deg));
    }));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_count.CopyFromHost({&ckpt_count, 1}); }));
    const uint32_t zero = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_overflow.CopyFromHost({&zero, 1}); }));
    count = ckpt_count;
    ctx.active = nullptr;
    ctx.active_size = 0;
    ctx.use_active = false;
    return Status::OK();
  };

  sim::SimProfiler* const prof = device_->profiler();
  uint32_t level_retries = 0;
  while (count < n) {  // Line 5.
    // Round-boundary lifecycle check (common/cancellation.h): an expired or
    // cancelled request stops here — before the next scan launch — so the
    // device arrays free on return and the device is released within one
    // peel round of the trigger.
    if (opt.cancel != nullptr) {
      if (Status live = opt.cancel->Check("gpu_peel round boundary");
          !live.ok()) {
        if (prof != nullptr) {
          prof->Mark(StrFormat("%s k=%u",
                               live.IsCancelled() ? "cancelled"
                                                  : "deadline_exceeded",
                               k));
        }
        return live;
      }
    }
    Status level = run_level();
    if (level.ok()) {
      if (resilient) {
        // The validated post-round state becomes the new checkpoint.
        std::swap(ckpt_deg, post_deg);
        ckpt_count = count;
        ++result.metrics.checkpoints_taken;
        if (prof != nullptr) prof->Mark(StrFormat("checkpoint k=%u", k));
      }
      ++k;  // Line 9.
      ++result.metrics.rounds;
      level_retries = 0;
      if (k > k_limit) return Status::Internal("peeling failed to converge");
      continue;
    }
    if (!resilient) return level;

    Status cause = level;
    if (cause.IsCorruption() || cause.IsCapacityExceeded()) {
      // Roll back and re-execute the round. An overflow is retried too:
      // corrupted degrees can flood the buffers, and a genuine capacity
      // problem reproduces deterministically from the restored state.
      if (level_retries < opt.resilience.max_level_retries) {
        WallTimer recovery;
        ++level_retries;
        ++result.metrics.levels_reexecuted;
        // Rollback flow arrow: from the corrupt round's end to the restored
        // re-execution point (both on the modeled clock).
        uint64_t flow_id = 0;
        if (prof != nullptr) flow_id = prof->FlowBegin("rollback");
        Status restored;
        {
          sim::ProfRange rollback_range(prof, "rollback");
          restored = rollback();
        }
        if (prof != nullptr) prof->FlowEnd("rollback", flow_id);
        result.metrics.recovery_ms += recovery.ElapsedMillis();
        if (restored.ok()) continue;
        cause = restored;  // the rollback itself hit a permanent fault
      } else if (cause.IsCapacityExceeded()) {
        // Reproduced from a verified checkpoint: a real configuration
        // limit, not corruption — surface it.
        return cause;
      }
    }
    // Permanent failure (device lost, retry budgets exhausted): degrade to
    // the CPU from the last verified checkpoint.
    if (!opt.resilience.cpu_fallback) return cause;
    DecomposeResult degraded = cpu_finish(cause, k);
    KCORE_RETURN_IF_ERROR(device_->CheckStatus());
    return degraded;
  }

  // Line 10: deg[] now holds the core numbers.
  if (resilient) {
    // Validated every round; the checkpoint IS the final state.
    result.core = std::move(ckpt_deg);
  } else {
    result.core.assign(n, 0);
    KCORE_RETURN_IF_ERROR(
        d_deg.CopyToHost(std::span<uint32_t>(result.core)));
  }

  finish_loop_imbalance();
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = device_->modeled_ms();
  result.metrics.peak_device_bytes = device_->peak_bytes();
  result.metrics.counters = device_->totals();
  // Under --simcheck / check_mode, a detected violation fails the run.
  KCORE_RETURN_IF_ERROR(device_->CheckStatus());
  return result;
}

StatusOr<DecomposeResult> RunGpuPeel(const CsrGraph& graph,
                                     const GpuPeelOptions& options,
                                     const sim::DeviceOptions& device_options) {
  sim::Device device(device_options);
  GpuPeelDecomposer decomposer(&device, options);
  return decomposer.Decompose(graph);
}

StatusOr<SingleKCoreResult> GpuSingleKCore(const CsrGraph& graph, uint32_t k,
                                           const GpuPeelOptions& options,
                                           sim::Device* device) {
  if (k < 1) {
    return Status::InvalidArgument("single-k mining requires k >= 1");
  }
  const GpuPeelOptions& opt = options;
  const VertexId n = graph.NumVertices();
  if (opt.renumber) {
    // Same wrap as Decompose: mine on the relabeled CSR, then permute the
    // membership bitmap back and rebuild the ascending member list in
    // original-ID space. Remap cost lands in wall_ms only.
    WallTimer total;
    const Renumbering rn = DegreeOrderRenumber(graph, opt.block_dim);
    GpuPeelOptions inner_options = opt;
    inner_options.renumber = false;
    KCORE_ASSIGN_OR_RETURN(SingleKCoreResult result,
                           GpuSingleKCore(rn.graph, k, inner_options, device));
    result.in_core = rn.ToOriginal(result.in_core);
    result.vertices.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (result.in_core[v] != 0) result.vertices.push_back(v);
    }
    result.metrics.wall_ms = total.ElapsedMillis();
    return result;
  }
  KCORE_RETURN_IF_ERROR(ValidateGpuPeelOptions(opt, *device));

  WallTimer timer;
  device->ResetClock();
  const bool resilient =
      opt.resilience.enabled && device->fault_injection_enabled();
  const uint64_t capacity =
      opt.buffer_capacity != 0
          ? opt.buffer_capacity
          : std::max<uint64_t>(4096, static_cast<uint64_t>(n) / 4);

  SingleKCoreResult result;
  result.k = k;

  const auto with_retry = [&](auto&& op) -> Status {
    Status st = op();
    if (!resilient) return st;
    for (uint32_t attempt = 0;
         st.IsUnavailable() && attempt < opt.resilience.max_op_retries;
         ++attempt) {
      ++result.metrics.retries;
      if (opt.resilience.backoff_base_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<uint64_t>(opt.resilience.backoff_base_ms) << attempt));
      }
      st = op();
    }
    return st;
  };

  // The device path never calls MarkCorruptible: with one round there is no
  // checkpoint to roll back to, so deg[] stays ECC-protected like the
  // topology and injected bitflips are inert here. Launch/copy faults are
  // still live — transients are retried, and a permanent loss degrades to
  // the CPU algorithm below.
  std::vector<uint32_t> final_deg;
  const auto run = [&]() -> Status {
    // Single-k mining is one scan+loop pair — its only "round boundary" is
    // the entry point, so the lifecycle check runs before the device is
    // touched at all. Cancelled/DeadlineExceeded surface to the caller
    // directly (they are request outcomes, not engine faults, so the CPU
    // fallback below must not absorb them).
    if (opt.cancel != nullptr) {
      KCORE_RETURN_IF_ERROR(opt.cancel->Check("single-k entry"));
    }
    sim::DeviceArray<EdgeIndex> d_offsets;
    sim::DeviceArray<VertexId> d_neighbors;
    sim::DeviceArray<uint32_t> d_deg;
    sim::DeviceArray<VertexId> d_buf;
    sim::DeviceArray<uint64_t> d_buf_e;
    sim::DeviceArray<uint64_t> d_count;
    sim::DeviceArray<uint32_t> d_overflow;
    KCORE_ASSIGN_OR_RETURN(d_offsets, device->AllocUninit<EdgeIndex>(
                                          graph.offsets().size(), "offsets"));
    KCORE_ASSIGN_OR_RETURN(
        d_neighbors,
        device->AllocUninit<VertexId>(
            std::max<size_t>(1, graph.neighbors().size()), "neighbors"));
    KCORE_ASSIGN_OR_RETURN(
        d_deg, device->AllocUninit<uint32_t>(std::max<VertexId>(1, n), "deg"));
    KCORE_ASSIGN_OR_RETURN(
        d_buf,
        device->AllocUninit<VertexId>(
            static_cast<uint64_t>(opt.num_blocks) * capacity, "buf"));
    KCORE_ASSIGN_OR_RETURN(
        d_buf_e, device->AllocUninit<uint64_t>(opt.num_blocks, "buf_e"));
    KCORE_ASSIGN_OR_RETURN(d_count, device->Alloc<uint64_t>(1, "count"));
    KCORE_ASSIGN_OR_RETURN(d_overflow, device->Alloc<uint32_t>(1, "overflow"));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_offsets.CopyFromHost(graph.offsets()); }));
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return d_neighbors.CopyFromHost(graph.neighbors()); }));
    const std::vector<uint32_t> host_deg = graph.DegreeArray();
    KCORE_RETURN_IF_ERROR(with_retry([&] {
      return d_deg.CopyFromHost(std::span<const uint32_t>(host_deg));
    }));

    KernelCtx ctx;
    ctx.offsets = d_offsets.data();
    ctx.neighbors = d_neighbors.data();
    ctx.deg = d_deg.data();
    ctx.buf = d_buf.data();
    ctx.buf_e = d_buf_e.data();
    ctx.gpu_count = d_count.data();
    ctx.overflow = d_overflow.data();
    ctx.capacity = capacity;
    ctx.num_vertices = n;
    ctx.scan_below = true;
    ctx.ring = opt.ring_buffer;
    ctx.sm = opt.shared_memory_buffering;
    ctx.shared_capacity = opt.shared_buffer_capacity;
    ctx.append = opt.append;
    ctx.expand = opt.expand_strategy;
    ctx.block_threshold = opt.block_expand_threshold;

    sim::SimProfiler* const prof = device->profiler();
    double phase_mark = device->modeled_ms();
    const auto charge = [&](double& phase_ms) {
      const double now = device->modeled_ms();
      phase_ms += now - phase_mark;
      phase_mark = now;
    };

    // One scan+loop pair total. The scan seeds every block buffer with its
    // deg < k vertices (Xiang's initial deletion stack); the loop at
    // threshold k-1 is the cascade verbatim — skip du <= k-1 (already
    // deleted), decrement survivors, append on old == k (u just crossed
    // below k), roll back on overshoot.
    {
      sim::ProfRange scan_range(prof, "scan");
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return device->Launch(opt.num_blocks, opt.block_dim, "scan",
                              [&](auto& block) { ScanKernel(ctx, k, block); });
      }));
      charge(result.metrics.scan_ms);
    }
    {
      const bool vp = opt.vertex_prefetching;
      const bool binned = opt.expand_strategy != ExpandStrategy::kWarp;
      sim::ProfRange loop_range(prof, "loop");
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return device->Launch(opt.num_blocks, opt.block_dim, "loop",
                              [&](auto& block) {
                                if (binned) {
                                  LoopKernelBinned(ctx, k - 1, vp, block);
                                } else {
                                  LoopKernel(ctx, k - 1, vp, block);
                                }
                              });
      }));
      charge(result.metrics.loop_ms);
    }

    uint32_t overflow = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return d_overflow.CopyToHost({&overflow, 1}); }));
    if (overflow != 0) {
      return Status::CapacityExceeded(StrFormat(
          "block buffer overflow mining k=%u (capacity %llu IDs%s)", k,
          static_cast<unsigned long long>(capacity),
          opt.ring_buffer ? ", ring" : ""));
    }
    final_deg.resize(n);
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return d_deg.CopyToHost(std::span<uint32_t>(final_deg)); }));
    return Status::OK();
  };

  if (Status st = run(); !st.ok()) {
    if (resilient && opt.resilience.cpu_fallback &&
        (st.IsOutOfMemory() || st.IsUnavailable() || st.IsDeviceLost())) {
      // Graceful degradation: the query is stateless (no checkpoint to
      // resume from), so the fallback is simply the CPU algorithm from
      // scratch.
      WallTimer recovery;
      if (sim::SimProfiler* const prof = device->profiler()) {
        prof->Mark(StrFormat("single_k_cpu_fallback k=%u", k));
      }
      SingleKCoreResult cpu = XiangSingleKCore(graph, k);
      cpu.metrics.degraded = true;
      if (st.IsDeviceLost()) ++cpu.metrics.devices_lost;
      cpu.metrics.retries = result.metrics.retries;
      cpu.metrics.cpu_fallback_levels = 1;
      cpu.metrics.counters += device->totals();
      cpu.metrics.modeled_ms += device->modeled_ms();
      cpu.metrics.peak_device_bytes =
          std::max(cpu.metrics.peak_device_bytes, device->peak_bytes());
      cpu.metrics.recovery_ms = recovery.ElapsedMillis();
      cpu.metrics.wall_ms = timer.ElapsedMillis();
      return cpu;
    }
    return st;
  }

  // deg >= k now means "survived the cascade": exactly the k-core.
  result.in_core.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (final_deg[v] >= k) {
      result.in_core[v] = 1;
      result.vertices.push_back(v);
    }
  }
  result.metrics.rounds = 1;
  result.metrics.counters = device->totals();
  result.metrics.modeled_ms = device->modeled_ms();
  result.metrics.peak_device_bytes = device->peak_bytes();
  result.metrics.wall_ms = timer.ElapsedMillis();
  // Under --simcheck / check_mode, a detected violation fails the run.
  KCORE_RETURN_IF_ERROR(device->CheckStatus());
  return result;
}

StatusOr<SingleKCoreResult> RunGpuSingleKCore(
    const CsrGraph& graph, uint32_t k, const GpuPeelOptions& options,
    const sim::DeviceOptions& device_options) {
  sim::Device device(device_options);
  return GpuSingleKCore(graph, k, options, &device);
}

}  // namespace kcore
