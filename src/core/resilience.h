#ifndef KCORE_CORE_RESILIENCE_H_
#define KCORE_CORE_RESILIENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// Exact consistency check of a peeling degree array at the end of round k
/// against the round-start checkpoint `prev`, shared by the resilient
/// single- and multi-GPU drivers. The peeling algorithms maintain deg[v] ==
/// degree of v in the subgraph induced by unpeeled vertices (peeled vertices
/// keep deg == core forever), so after an uncorrupted round:
///   (1) deg is monotone non-increasing, and peeled state (prev < k) is
///       frozen;
///   (2) no unpeeled vertex skips below the k-shell (prev >= k => deg >= k);
///   (3) the cumulative removed `count` equals #{v : deg[v] <= k};
///   (4) every survivor's deg equals its live-neighbor count
///       |{u in N(v) : deg[u] > k}|;
///   (5) every vertex peeled this round has at most k live neighbors left.
/// A bitflip in deg breaks (1)/(2)/(4) at the flipped vertex, or — when the
/// flip causes a mis-peel that the round then "legitimizes" — (3) or (5) at
/// the mis-peeled vertex. See DESIGN.md for the detection boundary.
///
/// Cost: O(n) plus the adjacency of every vertex unpeeled at round start;
/// only paid when a fault plan is attached.
bool ValidatePeelRound(const CsrGraph& graph,
                       const std::vector<uint32_t>& prev,
                       const std::vector<uint32_t>& deg, uint32_t k,
                       uint64_t count, std::string* why);

}  // namespace kcore

#endif  // KCORE_CORE_RESILIENCE_H_
