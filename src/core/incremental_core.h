#ifndef KCORE_CORE_INCREMENTAL_CORE_H_
#define KCORE_CORE_INCREMENTAL_CORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "core/gpu_peel_options.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "graph/edge_update.h"
#include "perf/metrics.h"

namespace kcore {

/// Configuration of the GPU-resident incremental maintenance engine.
struct IncrementalOptions {
  /// Kernel grid geometry. The affected regions are small relative to a full
  /// peel, so the default grid is narrower than GpuPeelOptions'.
  uint32_t num_blocks = 64;
  uint32_t block_dim = 256;

  /// Fraction of the base directed-edge count that the delta overlay
  /// (insert slabs + delete tombstones) may reach before it is merged back
  /// into a freshly laid-out base CSR by the device-side compaction kernel.
  double compact_threshold = 0.25;

  /// Correctness escape hatch: once the affected region (batch-stamped
  /// vertices) exceeds this fraction of V, the localized re-peel is
  /// abandoned for a full from-scratch GPU peel of the current graph —
  /// at that size the localized pass has no asymptotic advantage left.
  double full_repeel_fraction = 0.5;

  /// Retries per device operation for transient (Unavailable) failures.
  uint32_t max_op_retries = 3;
  /// Whole-batch re-executions after post-batch validation catches a
  /// corrupted coreness array (injected bitflip): the device is re-attached
  /// from the last committed epoch — the checkpoint — and the batch re-runs.
  uint32_t max_batch_retries = 2;
  /// Degrade to the exact CPU batch path (cpu/dynamic_core.h) once the
  /// device is lost or retry budgets are exhausted; false = surface the
  /// Status and leave the committed epoch untouched.
  bool cpu_fallback = true;

  /// Options for the full re-peel escape hatch (gpu_peel.cc driver).
  GpuPeelOptions repeel;

  /// Polled at frontier-expansion and fixpoint-iteration (wave) boundaries;
  /// a cancelled batch leaves the committed epoch untouched. Not owned.
  const CancelContext* cancel = nullptr;
};

/// Validates geometry and thresholds against a device's limits.
Status ValidateIncrementalOptions(const IncrementalOptions& options,
                                  const sim::Device& device);

/// Outcome of one committed (or degraded-committed) update batch.
struct UpdateResult {
  /// Epoch after the batch; each committed batch advances it by one.
  uint64_t epoch = 0;
  /// Vertices whose core number changed, ascending.
  std::vector<VertexId> changed;
  /// The full coreness snapshot at `epoch`.
  std::vector<uint32_t> core;

  /// Batch-stamped vertices: seeds + equal-coreness frontier + every vertex
  /// re-evaluated by the localized fixpoint — the |affected| in the
  /// O(|affected|) bound, and what the escape hatch measures against V.
  uint64_t affected = 0;
  /// Directed adjacency entries incident to the affected region (sum of
  /// committed-epoch degrees over the batch-stamped vertices) — the measured
  /// meaning of "a batch touching x% of edges". A full re-peel reports the
  /// whole directed edge set; the host fallback path does not track it (0).
  uint64_t affected_edges = 0;
  /// Localized h-index fixpoint iterations (re-peel waves) across the batch.
  uint64_t refine_waves = 0;
  /// Live directed overlay entries after the batch (pre-merge).
  uint64_t overlay_edges = 0;
  /// The overlay was merged into a fresh base CSR after this batch.
  bool compacted = false;
  /// The affected region exceeded full_repeel_fraction * V and the batch
  /// was finished by a full from-scratch GPU peel.
  bool full_repeel = false;
  /// Served by the exact CPU fallback (device lost / budget exhausted).
  bool degraded = false;

  Metrics metrics;
};

/// GPU-resident batched incremental k-core maintenance (the serving-side
/// answer to the paper's static peel): the CSR and the current coreness stay
/// resident on the simulated device across batches; each batch applies its
/// edge inserts/deletes through a delta-CSR overlay (tombstoned base slots +
/// per-vertex linked insert slabs), seeds the candidate frontier from the
/// update endpoints, expands it through equal-coreness neighbors (the
/// traversal-locality insight of cpu/dynamic_core.h, on the device), and
/// runs a localized iterate-to-fixpoint h-index re-peel over only that
/// region. Reads are snapshot-consistent: core()/epoch() serve the last
/// committed epoch even while a batch is in flight, and a failed or
/// cancelled batch leaves the committed epoch untouched (the coreness array
/// checkpoint is the last epoch's snapshot).
///
/// Thread compatibility: like sim::Device, one driving thread at a time.
class IncrementalCoreEngine {
 public:
  /// Builds the engine over `initial`: decomposes it host-side (BZ) and
  /// attaches the device-resident graph. `known_core`, when non-null, must
  /// be the exact decomposition of `initial` and skips the eager BZ.
  static StatusOr<std::unique_ptr<IncrementalCoreEngine>> Create(
      const CsrGraph& initial, const IncrementalOptions& options,
      const sim::DeviceOptions& device_options,
      const std::vector<uint32_t>* known_core = nullptr);

  ~IncrementalCoreEngine();
  IncrementalCoreEngine(const IncrementalCoreEngine&) = delete;
  IncrementalCoreEngine& operator=(const IncrementalCoreEngine&) = delete;

  /// Applies one insert/delete window as a batch on the device and commits
  /// a new epoch. The batch is atomic: on any failure (invalid update,
  /// cancellation, unrecoverable device fault with cpu_fallback off)
  /// nothing is applied and the committed epoch is unchanged — the same
  /// batch may be retried, including on the CPU path. Sequential batch
  /// semantics match DynamicKCore::ApplyBatch.
  StatusOr<UpdateResult> ApplyUpdates(std::span<const EdgeUpdate> batch);

  /// The degraded-exact path: applies the batch host-side with the
  /// cpu/dynamic_core.h algorithm against the committed epoch and commits.
  /// Used directly by the serving layer when the breaker is open, and
  /// internally once the device is lost (cpu_fallback). The device graph is
  /// lazily re-attached on the next GPU batch.
  StatusOr<UpdateResult> ApplyUpdatesCpu(std::span<const EdgeUpdate> batch);

  /// Committed-epoch snapshot reads (valid while a batch is in flight).
  const std::vector<uint32_t>& core() const { return core_; }
  uint64_t epoch() const { return epoch_; }

  /// Materializes the committed graph as CSR (sorted adjacency).
  CsrGraph CurrentGraph() const;

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }

  /// Probes the device (sim::Device::HealthCheck); used by the serving
  /// breaker's half-open probe. A lost device reports DeviceLost without
  /// touching committed state.
  Status HealthCheck();

  /// Swaps the device options used at the next (re)attach — the serving
  /// layer updates the fault-plan override per request. No effect on the
  /// currently attached device.
  void set_device_options(const sim::DeviceOptions& device_options) {
    device_options_ = device_options;
  }
  /// Request-lifecycle context for subsequent batches (not owned).
  void set_cancel(const CancelContext* cancel) { options_.cancel = cancel; }

  /// The device's profiler trace, when profiling is on (null otherwise);
  /// per-batch `update_epoch_<N>` ranges land here. Re-attach replaces the
  /// device, so callers must not cache the pointer across batches.
  const sim::Device* device() const { return device_.get(); }

  /// True when the device graph must be rebuilt before the next GPU batch
  /// (after device loss, a cancelled/aborted batch, or a CPU-path commit).
  bool needs_reattach() const { return needs_reattach_; }

 private:
  struct DeviceState;

  IncrementalCoreEngine(const CsrGraph& initial, IncrementalOptions options,
                        sim::DeviceOptions device_options);

  /// Validates `batch` against committed adjacency + sequential semantics
  /// and splits it into net inserts / net deletes (order-free sets).
  Status ValidateAndSplit(std::span<const EdgeUpdate> batch,
                          std::vector<EdgeUpdate>* net_inserts,
                          std::vector<EdgeUpdate>* net_deletes) const;

  /// (Re)creates the device and uploads the committed graph + coreness.
  Status Attach();
  /// Runs the GPU batch against the attached device. On Corruption the
  /// caller re-attaches and retries; any other failure propagates.
  Status RunGpuBatch(std::span<const EdgeUpdate> net_inserts,
                     std::span<const EdgeUpdate> net_deletes,
                     UpdateResult* result);
  /// Commits host-side state for a successful batch.
  void Commit(std::span<const EdgeUpdate> net_inserts,
              std::span<const EdgeUpdate> net_deletes,
              std::vector<uint32_t> new_core, UpdateResult* result);
  /// Merges the delta overlay back into a fresh base CSR once it crosses
  /// compact_threshold of the base directed-edge count (post-commit).
  Status MaybeMergeOverlay(UpdateResult* result);

  IncrementalOptions options_;
  sim::DeviceOptions device_options_;

  // Committed host state: sorted adjacency mirror, coreness snapshot, epoch.
  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<uint32_t> core_;
  uint64_t num_edges_ = 0;
  uint64_t epoch_ = 0;

  std::unique_ptr<sim::Device> device_;
  std::unique_ptr<DeviceState> state_;
  bool needs_reattach_ = true;
};

}  // namespace kcore

#endif  // KCORE_CORE_INCREMENTAL_CORE_H_
