#include "vetga/vetga.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

/// Charges vector-primitive calls against a whole-device cost model: each
/// call pays fixed dispatch overhead plus element throughput across the full
/// GPU (108 SMs x 1024 threads of vector width).
class VectorOpMeter {
 public:
  VectorOpMeter(double dispatch_ns, ModeledClock* clock,
                PerfCounters* counters, Trace* trace)
      : dispatch_ns_(dispatch_ns),
        clock_(clock),
        counters_(counters),
        trace_(trace) {}

  /// `op` names the primitive in the trace (one span per dispatch,
  /// dispatch overhead included — VETGA's launch-bound profile is the
  /// point of the timeline).
  void Charge(const char* op, uint64_t elements, uint64_t reads,
              uint64_t writes) {
    ++counters_->vector_op_calls;
    counters_->lane_ops += elements;
    counters_->global_reads += reads;
    counters_->global_writes += writes;
    PerfCounters work;
    work.lane_ops = elements;
    work.global_reads = reads;
    work.global_writes = writes;
    const double start_ns = clock_->ms() * 1e6;
    clock_->AddSerial(work);
    clock_->AddOverheadNs(dispatch_ns_);
    if (trace_ != nullptr) {
      trace_->AddComplete(
          op, kTraceCatKernel, 0, kTraceTidKernels, start_ns,
          clock_->ms() * 1e6 - start_ns,
          {{"elements",
            StrFormat("%llu", static_cast<unsigned long long>(elements))}});
    }
  }

 private:
  double dispatch_ns_;
  ModeledClock* clock_;
  PerfCounters* counters_;
  Trace* trace_;
};

}  // namespace

StatusOr<DecomposeResult> RunVetga(const CsrGraph& graph,
                                   const VetgaConfig& config) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const EdgeIndex m = graph.NumDirectedEdges();
  const bool tracing = config.trace != nullptr;
  sim::DeviceOptions device_options = config.device;
  if (tracing) device_options.profile = true;
  sim::Device device(device_options);
  Trace trace;

  // Whole-device vector model: one logical unit spanning every SM.
  CostModel cost = GpuNativeCostModel();
  cost.unit_parallel_width = 108.0 * 1024.0;
  cost.kernel_launch_ns = 0.0;  // dispatch charged per primitive instead
  ModeledClock clock(cost);
  DecomposeResult result;
  VectorOpMeter meter(config.op_dispatch_ns, &clock,
                      &result.metrics.counters,
                      tracing ? &trace : nullptr);

  // PyTorch + CUDA context (allocator pools, cuBLAS handles), graph size
  // independent; ~500 MB on the real system, scaled 1/400.
  KCORE_ASSIGN_OR_RETURN(auto t_runtime,
                         device.Alloc<uint8_t>(4000u << 10, "vt_runtime"));
  (void)t_runtime;
  // Tensors. PyTorch stores indices as int64; the CSR doubles in size.
  KCORE_ASSIGN_OR_RETURN(
      auto t_offsets,
      device.Alloc<int64_t>(graph.offsets().size(), "vt_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_neighbors,
      device.Alloc<int64_t>(std::max<EdgeIndex>(1, m), "vt_neighbors"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_deg, device.Alloc<uint32_t>(std::max<VertexId>(1, n), "vt_deg"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_alive,
      device.Alloc<uint8_t>(std::max<VertexId>(1, n), "vt_alive"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_core,
      device.Alloc<uint32_t>(std::max<VertexId>(1, n), "vt_core"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_mask, device.Alloc<uint8_t>(std::max<VertexId>(1, n), "vt_mask"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_frontier,
      device.Alloc<int64_t>(std::max<VertexId>(1, n), "vt_frontier"));
  KCORE_ASSIGN_OR_RETURN(
      auto t_counts,
      device.Alloc<uint32_t>(std::max<VertexId>(1, n), "vt_counts"));
  // Flattened gather output sized for the worst case (all edges at once).
  KCORE_ASSIGN_OR_RETURN(
      auto t_flat,
      device.Alloc<int64_t>(std::max<EdgeIndex>(1, m), "vt_flat"));

  for (size_t i = 0; i < graph.offsets().size(); ++i) {
    t_offsets.data()[i] = static_cast<int64_t>(graph.offsets()[i]);
  }
  for (EdgeIndex i = 0; i < m; ++i) {
    t_neighbors.data()[i] = static_cast<int64_t>(graph.neighbors()[i]);
  }
  {
    const auto deg = graph.DegreeArray();
    std::copy(deg.begin(), deg.end(), t_deg.data());
  }
  std::fill(t_alive.data(), t_alive.data() + n, uint8_t{1});
  std::fill(t_core.data(), t_core.data() + n, 0u);

  result.metrics.load_ms =
      static_cast<double>(graph.NumUndirectedEdges()) *
      config.load_ns_per_edge / 1e6;

  uint32_t* deg = t_deg.data();
  uint8_t* alive = t_alive.data();
  uint32_t* core = t_core.data();
  uint8_t* mask = t_mask.data();
  int64_t* frontier = t_frontier.data();
  uint32_t* counts = t_counts.data();
  int64_t* flat = t_flat.data();

  // mask = alive & (deg <= k): one fused compare primitive.
  auto compute_mask = [&](uint32_t k) {
    for (VertexId v = 0; v < n; ++v) {
      mask[v] = (alive[v] != 0 && deg[v] <= k) ? 1 : 0;
    }
    meter.Charge("vt_compare_mask", n, 2 * n, n);
  };

  // frontier = nonzero(mask): stream-compaction primitive.
  auto nonzero = [&]() -> uint64_t {
    uint64_t size = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (mask[v] != 0) frontier[size++] = v;
    }
    meter.Charge("vt_nonzero", n, n, size);
    return size;
  };

  uint64_t removed = 0;
  uint32_t k = 0;
  while (removed < n) {
    // Round-boundary lifecycle check (common/cancellation.h): the tensors
    // free on return, so an expired or cancelled request releases the
    // device within one peeling round.
    if (config.cancel != nullptr) {
      KCORE_RETURN_IF_ERROR(config.cancel->Check("vetga round boundary"));
    }
    const double round_start_ns = clock.ms() * 1e6;
    compute_mask(k);
    uint64_t fsize = nonzero();
    while (fsize != 0) {
      ++result.metrics.iterations;

      // core[frontier] = k; alive[frontier] = 0: two scatter primitives.
      for (uint64_t i = 0; i < fsize; ++i) {
        core[frontier[i]] = k;
        alive[frontier[i]] = 0;
        deg[frontier[i]] = k;
      }
      meter.Charge("vt_scatter", fsize, fsize, 3 * fsize);
      removed += fsize;

      // flat = gather(neighbors, frontier adjacency): segment-gather.
      uint64_t flat_size = 0;
      for (uint64_t i = 0; i < fsize; ++i) {
        const auto v = static_cast<VertexId>(frontier[i]);
        for (VertexId u : graph.Neighbors(v)) flat[flat_size++] = u;
      }
      meter.Charge("vt_gather", flat_size, flat_size + fsize, flat_size);
      result.metrics.counters.edges_traversed += flat_size;

      // counts = bincount(flat[alive]): masked histogram primitive.
      std::fill(counts, counts + n, 0u);
      for (uint64_t i = 0; i < flat_size; ++i) {
        const auto u = static_cast<VertexId>(flat[i]);
        if (alive[u] != 0) ++counts[u];
      }
      meter.Charge("vt_bincount", flat_size + n, 2 * flat_size, n);

      // deg = max(deg - counts, k) elementwise (alive lanes only).
      for (VertexId v = 0; v < n; ++v) {
        if (alive[v] != 0) {
          deg[v] = std::max(k, deg[v] - std::min(deg[v], counts[v]));
        }
      }
      meter.Charge("vt_deg_update", n, 2 * n, n);

      compute_mask(k);
      fsize = nonzero();

      if (clock.ms() > config.modeled_timeout_ms) {
        return Status::Timeout(
            StrFormat("VETGA exceeded modeled budget at k=%u", k));
      }
    }
    if (tracing) {
      trace.AddComplete(StrFormat("round k=%u", k), kTraceCatRange, 0,
                        kTraceTidRanges, round_start_ns,
                        clock.ms() * 1e6 - round_start_ns);
    }
    ++k;
    ++result.metrics.rounds;
    if (k > graph.MaxDegree() + 2) {
      return Status::Internal("VETGA failed to converge");
    }
  }

  result.core.assign(core, core + n);
  if (tracing) {
    // Absorb the device's own events (tensor allocs), then claim the
    // process label: the primitives and the allocator are one "process" in
    // the PyTorch analogy.
    if (sim::SimProfiler* prof = device.profiler()) {
      trace.Append(prof->trace());
    }
    trace.SetProcessName(0, "vetga");
    trace.SetThreadName(0, kTraceTidKernels, "primitives");
    trace.SetThreadName(0, kTraceTidRanges, "rounds");
    *config.trace = std::move(trace);
  }
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes = device.peak_bytes();
  KCORE_RETURN_IF_ERROR(device.CheckStatus());
  return result;
}

}  // namespace kcore
