#ifndef KCORE_VETGA_VETGA_H_
#define KCORE_VETGA_VETGA_H_

#include <limits>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"
#include "perf/trace.h"

namespace kcore {

struct VetgaConfig {
  /// Modeled budget; exceeded => Status::Timeout (Table III "> 1hr").
  double modeled_timeout_ms = std::numeric_limits<double>::infinity();
  /// PyTorch-style dispatch overhead charged per vector-primitive call
  /// (kernel launch + allocator + autograd bookkeeping), scaled to the
  /// miniature machine like the other launch constants.
  double op_dispatch_ns = 25000.0;
  /// Modeled per-edge loading cost of the interpreted (Python) edge-list
  /// loader the paper describes revising; drives the "LD > 1hr" rows.
  double load_ns_per_edge = 6000.0;
  sim::DeviceOptions device;
  /// Request lifecycle (common/cancellation.h): non-null makes the driver
  /// poll the token/deadline at every peeling-round boundary and return
  /// Cancelled / DeadlineExceeded, releasing the tensors within one round.
  /// Not owned; must outlive the run.
  const CancelContext* cancel = nullptr;
  /// simprof output (see cusim/simprof.h): non-null enables profiling and
  /// receives the run's timeline on return — one span per dispatched vector
  /// primitive (compare/nonzero/scatter/gather/bincount/deg-update) on
  /// VETGA's own modeled clock, peeling-round ranges, and the device's
  /// tensor alloc events. VETGA never uses Device::Launch (every primitive
  /// is a whole-array dispatch), so the spans are recorded by the
  /// primitive meter rather than the device.
  Trace* trace = nullptr;
};

/// VETGA (Mehrafsa, Chester, Thomo — paper §II-A): k-core peeling reframed
/// entirely in whole-array vector primitives so a tensor library (PyTorch)
/// can execute it on the GPU.
///
/// Per inner iteration the algorithm issues a fixed sequence of primitives
/// (compare-to-scalar, masked non-zero compaction, adjacency gather,
/// masked bincount, vector subtract), each a separate dispatched kernel over
/// full arrays — the execution profile that makes VETGA 1-2 orders slower
/// than a tailor-made kernel despite using the same hardware. Tensors use
/// int64 indices (PyTorch convention), doubling the graph's device footprint
/// relative to the 32-bit CSR of the native kernels (Table V).
StatusOr<DecomposeResult> RunVetga(const CsrGraph& graph,
                                   const VetgaConfig& config = {});

}  // namespace kcore

#endif  // KCORE_VETGA_VETGA_H_
