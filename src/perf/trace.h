#ifndef KCORE_PERF_TRACE_H_
#define KCORE_PERF_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "cusim/annotations.h"

namespace kcore {

/// One Trace Event Format record (the chrome://tracing JSON schema that
/// Perfetto and about:tracing load). Timestamps and durations are modeled
/// nanoseconds; the JSON writer converts to the format's microseconds.
///
/// Phases used here: 'X' complete span, 'i' instant, 'C' counter,
/// 's'/'f' flow begin/end (the arrows tying a fault to its recovery).
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  uint32_t pid = 0;
  uint32_t tid = 0;
  double ts_ns = 0.0;
  double dur_ns = 0.0;   ///< 'X' only.
  uint64_t flow_id = 0;  ///< 's'/'f' only.
  /// Extra per-event payload shown in the UI's args pane. Values are raw
  /// JSON fragments (already quoted/encoded by the producer) so numbers stay
  /// numbers and strings stay strings without a variant type here.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Well-known event categories. The per-kernel summary aggregates kKernel;
/// the bench harness sums kKernel spans per enclosing phase range. Per-block
/// sub-spans use kBlock so they neither double-count against their parent
/// kernel span nor flood the summary table.
inline constexpr const char* kTraceCatKernel = "kernel";
inline constexpr const char* kTraceCatBlock = "block";
inline constexpr const char* kTraceCatRange = "range";
inline constexpr const char* kTraceCatMemory = "memory";
inline constexpr const char* kTraceCatCopy = "copy";
inline constexpr const char* kTraceCatRecovery = "recovery";

/// Conventional tids inside one device pid. Block lanes (per-SM rows under a
/// kernel span) start at kTraceTidBlockLanes + sm.
inline constexpr uint32_t kTraceTidKernels = 0;
inline constexpr uint32_t kTraceTidRanges = 1;
inline constexpr uint32_t kTraceTidPcie = 2;
inline constexpr uint32_t kTraceTidMemory = 3;
inline constexpr uint32_t kTraceTidBlockLanes = 16;

/// JSON-encodes `s` including the surrounding quotes (for TraceEvent args).
std::string JsonQuote(const std::string& s);

/// An append-only container of trace events plus process/thread naming
/// metadata. Producers (the simulated device's profiler, the multi-GPU and
/// VETGA drivers) append on the host thread; WriteChromeTrace exports the
/// whole run as one chrome://tracing JSON document.
class KCORE_OBSERVER Trace {
 public:
  /// Names a process track ("gpu0", "master"). Multi-device runs use one pid
  /// per device so Perfetto draws them as separate process groups.
  void SetProcessName(uint32_t pid, std::string name);
  /// Names a thread track within a process ("kernels", "phases", "sm 3").
  void SetThreadName(uint32_t pid, uint32_t tid, std::string name);

  void AddComplete(std::string name, std::string cat, uint32_t pid,
                   uint32_t tid, double ts_ns, double dur_ns,
                   std::vector<std::pair<std::string, std::string>> args = {});
  void AddInstant(std::string name, std::string cat, uint32_t pid,
                  uint32_t tid, double ts_ns,
                  std::vector<std::pair<std::string, std::string>> args = {});
  /// One sample of a counter track (drawn as a stacked area chart). Each
  /// entry of `series` is {series name, value}.
  void AddCounter(std::string name, uint32_t pid, double ts_ns,
                  std::vector<std::pair<std::string, double>> series);
  /// Flow arrows: Begin and End with the same id draw an arrow from the
  /// begin point to the end point (used for fault -> retry/rollback links).
  void AddFlowBegin(std::string name, uint32_t pid, uint32_t tid, double ts_ns,
                    uint64_t id);
  void AddFlowEnd(std::string name, uint32_t pid, uint32_t tid, double ts_ns,
                  uint64_t id);

  /// Merges another trace's events and naming metadata (multi-GPU: the
  /// driver's own trace absorbs each worker device's profiler trace).
  void Append(const Trace& other);
  /// Append restricted to `other`'s events from index `first_event` on.
  /// The incremental serving path exports per-batch slices of a persistent
  /// device's accumulating profiler trace without re-exporting old batches.
  void AppendFrom(const Trace& other, size_t first_event);

  bool empty() const { return events_.empty(); }
  size_t num_events() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// The full trace as a chrome://tracing JSON object (load in Perfetto or
  /// chrome://tracing). Timestamps/durations are emitted in microseconds
  /// with sub-ns precision preserved.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Per-kernel aggregate over kTraceCatKernel complete spans, the modeled
  /// analogue of `nsys stats --report gpukernsum`.
  struct KernelStat {
    std::string name;
    uint64_t count = 0;
    double total_ns = 0.0;
    double min_ns = 0.0;
    double max_ns = 0.0;
  };
  /// Sorted by descending total time.
  std::vector<KernelStat> KernelStats() const;
  /// Human-readable table of KernelStats with time percentages.
  std::string KernelSummaryTable() const;

  /// Sum of complete-span durations in `cat` whose name matches `name`
  /// exactly ("" = any name). Used by tests and the bench harness to check
  /// kernel spans against Metrics phase totals.
  double TotalDurNs(const std::string& cat, const std::string& name = "") const;

 private:
  std::vector<TraceEvent> events_;
  /// pid -> process name; (pid, tid) -> thread name. Kept separately from
  /// events_ so Append can dedup names.
  std::vector<std::pair<uint32_t, std::string>> process_names_;
  std::vector<std::pair<std::pair<uint32_t, uint32_t>, std::string>>
      thread_names_;
};

}  // namespace kcore

#endif  // KCORE_PERF_TRACE_H_
