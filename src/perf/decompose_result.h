#ifndef KCORE_PERF_DECOMPOSE_RESULT_H_
#define KCORE_PERF_DECOMPOSE_RESULT_H_

#include <cstdint>
#include <vector>

#include "perf/metrics.h"

namespace kcore {

/// The output of every k-core decomposition engine in this repository:
/// core[v] is the core number of vertex v, plus the execution report.
struct DecomposeResult {
  std::vector<uint32_t> core;
  Metrics metrics;

  /// k_max: the graph's degeneracy (largest k with a non-empty k-core).
  uint32_t MaxCore() const {
    uint32_t max_core = 0;
    for (uint32_t c : core) {
      if (c > max_core) max_core = c;
    }
    return max_core;
  }
};

/// The output of a single-k direct-mining query ("give me the k-core", no
/// full decomposition): membership of the k-core plus the execution report.
/// Produced by XiangSingleKCore (CPU) and GpuSingleKCore / SingleKCore.
struct SingleKCoreResult {
  /// The k the query was mined for.
  uint32_t k = 0;
  /// in_core[v] != 0 iff v belongs to the k-core. Size V.
  std::vector<uint8_t> in_core;
  /// The k-core's vertices in ascending ID order (the dense answer most
  /// callers want; |vertices| vertices are in the core).
  std::vector<uint32_t> vertices;
  Metrics metrics;
};

}  // namespace kcore

#endif  // KCORE_PERF_DECOMPOSE_RESULT_H_
