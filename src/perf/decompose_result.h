#ifndef KCORE_PERF_DECOMPOSE_RESULT_H_
#define KCORE_PERF_DECOMPOSE_RESULT_H_

#include <cstdint>
#include <vector>

#include "perf/metrics.h"

namespace kcore {

/// The output of every k-core decomposition engine in this repository:
/// core[v] is the core number of vertex v, plus the execution report.
struct DecomposeResult {
  std::vector<uint32_t> core;
  Metrics metrics;

  /// k_max: the graph's degeneracy (largest k with a non-empty k-core).
  uint32_t MaxCore() const {
    uint32_t max_core = 0;
    for (uint32_t c : core) {
      if (c > max_core) max_core = c;
    }
    return max_core;
  }
};

}  // namespace kcore

#endif  // KCORE_PERF_DECOMPOSE_RESULT_H_
