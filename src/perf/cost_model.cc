#include "perf/cost_model.h"

namespace kcore {

// Calibration note (see EXPERIMENTS.md "Cost model"): the benchmark datasets
// are ~1/400-scale stand-ins for the paper's graphs, so constant per-launch
// overheads are scaled down consistently (a full-size launch+sync round trip
// is ~10 us; the miniature machine charges ~2 us) — otherwise launch
// overhead would swamp the shrunken per-edge work and invert every ratio
// the paper reports. Per-operation costs are kept at physical magnitudes.

CostModel GpuNativeCostModel() {
  CostModel model;
  model.kernel_launch_ns = 1000.0;
  return model;
}

CostModel GpuSystemCostModel() {
  CostModel model;
  // Graph-parallel frameworks execute UDFs through generic gather/scatter
  // machinery; per-operation costs are ~8x a tailor-made kernel (McSherry's
  // COST observation, which §VI's comparison quantifies).
  model.lane_op_ns = 7.0;
  model.global_read_ns = 11.0;
  model.global_write_ns = 11.0;
  model.global_atomic_ns = 45.0;
  model.shared_op_ns = 2.0;
  model.shared_atomic_ns = 6.0;
  model.scan_step_ns = 5.0;
  model.kernel_launch_ns = 8000.0;  // UDF dispatch + frontier bookkeeping
  // Generic per-vertex UDFs run data-dependent serial loops (h-index,
  // message folds) with divergent branches and uncoalesced gathers, so a
  // 1024-thread block sustains an effective SIMD width far below the
  // hardware width. This, with the per-op overheads above, is the modeled
  // form of the system-vs-native gap the paper measures in Table III.
  model.unit_parallel_width = 64.0;
  return model;
}

CostModel CpuCostModel() {
  CostModel model;
  model.lane_op_ns = 1.2;
  model.global_read_ns = 4.0;   // random DRAM access dominates CPU peeling
  model.global_write_ns = 4.0;
  model.global_atomic_ns = 20.0;
  model.shared_op_ns = 1.0;     // L1-resident data
  model.shared_atomic_ns = 10.0;
  model.barrier_ns = 4000.0;    // OpenMP-style barrier across 48 threads
  model.scan_step_ns = 1.2;
  model.kernel_launch_ns = 0.0;
  model.unit_parallel_width = 1.0;  // one scalar thread per unit
  model.shared_atomic_width = 1.0;
  model.global_atomic_width = 4.0;  // cross-socket contention
  return model;
}

}  // namespace kcore
