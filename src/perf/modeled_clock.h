#ifndef KCORE_PERF_MODELED_CLOCK_H_
#define KCORE_PERF_MODELED_CLOCK_H_

#include <span>

#include "perf/cost_model.h"
#include "perf/perf_counters.h"

namespace kcore {

/// Accumulates modeled time for phase-structured parallel algorithms: each
/// phase's duration is the maximum of its lanes' modeled unit times (the
/// slowest thread gates the barrier), plus an optional barrier charge.
class ModeledClock {
 public:
  explicit ModeledClock(const CostModel& cost) : cost_(cost) {}

  /// One parallel phase executed by `lanes` logical threads.
  void AddParallelPhase(std::span<const PerfCounters> lanes,
                        bool ends_with_barrier = true) {
    double max_ns = 0.0;
    for (const PerfCounters& c : lanes) {
      const double ns = cost_.UnitTimeNs(c);
      if (ns > max_ns) max_ns = ns;
    }
    ns_ += max_ns;
    if (ends_with_barrier) ns_ += cost_.barrier_ns;
  }

  /// Serial work on the driving thread.
  void AddSerial(const PerfCounters& counters) {
    ns_ += cost_.UnitTimeNs(counters);
  }

  /// Fixed overhead (launch, fork/join, bookkeeping).
  void AddOverheadNs(double ns) { ns_ += ns; }

  double ms() const { return ns_ / 1e6; }
  const CostModel& cost() const { return cost_; }

 private:
  CostModel cost_;
  double ns_ = 0.0;
};

}  // namespace kcore

#endif  // KCORE_PERF_MODELED_CLOCK_H_
