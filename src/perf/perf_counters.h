#ifndef KCORE_PERF_PERF_COUNTERS_H_
#define KCORE_PERF_PERF_COUNTERS_H_

#include <cstdint>

namespace kcore {

/// Dynamic operation counts accumulated while an algorithm executes. Every
/// field counts operations that really happened (instructions retired by the
/// simulated kernels or by the CPU baselines) — the performance model turns
/// these into modeled time, but the counts themselves are measurements.
struct PerfCounters {
  /// Lane-level compute/compare operations (degree checks, neighbor
  /// examinations, h-index loop steps).
  uint64_t lane_ops = 0;
  /// Global (device) memory reads/writes, counted per lane access.
  uint64_t global_reads = 0;
  uint64_t global_writes = 0;
  /// Atomic read-modify-writes on global memory (deg[] updates, gpu_count).
  uint64_t global_atomics = 0;
  /// Shared-memory accesses and atomics (block-local s/e counters, B buffer).
  uint64_t shared_ops = 0;
  uint64_t shared_atomics = 0;
  /// Block-level barriers executed (__syncthreads), per block.
  uint64_t barriers = 0;
  /// Prefix-sum / ballot steps executed by compaction variants.
  uint64_t scan_steps = 0;
  /// Kernel grid launches issued by the host loop.
  uint64_t kernel_launches = 0;
  /// Algorithm-level meters (reported in EXPERIMENTS.md, not charged twice):
  uint64_t edges_traversed = 0;    ///< Adjacency entries examined.
  uint64_t vertices_scanned = 0;   ///< Degree-array entries scanned.
  uint64_t buffer_appends = 0;     ///< k-shell vertices enqueued.
  uint64_t compactions = 0;        ///< Active-list rebuilds (CompactKernel).
  /// Scan-phase work avoided by active-vertex compaction: per scan launch,
  /// the number of already-peeled vertices the sweep no longer visits.
  uint64_t scan_vertices_skipped = 0;
  uint64_t hindex_evals = 0;       ///< h-index operator applications (MPM).
  uint64_t messages = 0;           ///< Vertex-centric messages (systems).
  uint64_t vector_op_calls = 0;    ///< Vector-primitive launches (VETGA).
  /// Loop-phase expansion bins: frontier vertices expanded at thread, warp,
  /// and block granularity (uncharged meters, like edges_traversed — the
  /// charged work is counted by the fields above as it happens).
  uint64_t loop_bin_thread = 0;
  uint64_t loop_bin_warp = 0;
  uint64_t loop_bin_block = 0;

  PerfCounters& operator+=(const PerfCounters& other) {
    lane_ops += other.lane_ops;
    global_reads += other.global_reads;
    global_writes += other.global_writes;
    global_atomics += other.global_atomics;
    shared_ops += other.shared_ops;
    shared_atomics += other.shared_atomics;
    barriers += other.barriers;
    scan_steps += other.scan_steps;
    kernel_launches += other.kernel_launches;
    edges_traversed += other.edges_traversed;
    vertices_scanned += other.vertices_scanned;
    buffer_appends += other.buffer_appends;
    compactions += other.compactions;
    scan_vertices_skipped += other.scan_vertices_skipped;
    hindex_evals += other.hindex_evals;
    messages += other.messages;
    vector_op_calls += other.vector_op_calls;
    loop_bin_thread += other.loop_bin_thread;
    loop_bin_warp += other.loop_bin_warp;
    loop_bin_block += other.loop_bin_block;
    return *this;
  }
};

}  // namespace kcore

#endif  // KCORE_PERF_PERF_COUNTERS_H_
