#ifndef KCORE_PERF_COST_MODEL_H_
#define KCORE_PERF_COST_MODEL_H_

#include <cstdint>

#include "perf/perf_counters.h"

namespace kcore {

/// Converts counted work into modeled nanoseconds.
///
/// Rationale: the reproduction host has one CPU core and no GPU, so measured
/// wall time cannot exhibit parallel speedups. Instead, every engine counts
/// the operations it actually executes (PerfCounters) and this model charges
/// each operation a calibrated cost, dividing parallelizable work by the
/// engine's parallel width. Constants are calibrated against the public
/// per-op characteristics of a P100-class GPU and a 2x24-thread Xeon host
/// (see EXPERIMENTS.md §Cost model); the relative outcomes in the benchmark
/// tables are driven by the counted work, not by per-engine fudge factors.
struct CostModel {
  // --- per-operation costs (nanoseconds, per lane-level op) ---
  double lane_op_ns = 0.9;
  double global_read_ns = 1.4;   ///< Amortized coalesced-transaction share.
  double global_write_ns = 1.4;
  double global_atomic_ns = 6.0;
  double shared_op_ns = 0.25;
  double shared_atomic_ns = 0.8;
  double barrier_ns = 150.0;     ///< Per __syncthreads per block.
  double scan_step_ns = 0.6;
  double kernel_launch_ns = 9000.0;  ///< Launch + host round-trip.

  // --- parallel widths ---
  /// Lane-level parallel width of one execution unit (thread block for GPU
  /// engines, one core for CPU engines).
  double unit_parallel_width = 1024.0;
  /// Effective concurrency of same-address shared atomics inside a unit
  /// (hardware-accelerated on the simulated GPU, per the paper's §IV-B).
  double shared_atomic_width = 32.0;
  /// Effective concurrency of global atomics across the device.
  double global_atomic_width = 128.0;

  /// Modeled execution time of one unit (block/thread) given its counters.
  /// Barriers and launches are charged at full (serializing) cost.
  double UnitTimeNs(const PerfCounters& c) const {
    double parallel =
        c.lane_ops * lane_op_ns + c.global_reads * global_read_ns +
        c.global_writes * global_write_ns + c.shared_ops * shared_op_ns +
        c.scan_steps * scan_step_ns;
    parallel /= unit_parallel_width;
    const double atomics =
        c.global_atomics * global_atomic_ns / global_atomic_width +
        c.shared_atomics * shared_atomic_ns / shared_atomic_width;
    return parallel + atomics + c.barriers * barrier_ns;
  }
};

/// Cost model for our native CUDA-style kernels: 1024-thread blocks.
CostModel GpuNativeCostModel();

/// Cost model for GPU graph-parallel systems (Medusa/Gunrock/GSWITCH):
/// identical hardware constants, plus the per-launch framework overhead the
/// paper attributes to system-level indirection (UDF dispatch, frontier
/// management). The extra work those systems do is *counted*, not assumed;
/// only the launch path is charged a higher constant.
CostModel GpuSystemCostModel();

/// Cost model for one CPU hardware thread (Xeon E5-2680 v4 class): lane
/// width 1 with higher per-op memory costs; no kernel launches.
CostModel CpuCostModel();

}  // namespace kcore

#endif  // KCORE_PERF_COST_MODEL_H_
