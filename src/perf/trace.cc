#include "perf/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strings.h"

namespace kcore {

namespace {

/// Formats a nanosecond stamp as the schema's microseconds. %.9g keeps
/// sub-ns precision (the cost model produces fractional ns) while printing
/// integers without a trailing ".000".
std::string MicrosField(double ns) { return StrFormat("%.9g", ns / 1e3); }

void AppendArgs(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& args) {
  if (args.empty()) return;
  out += ",\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonQuote(args[i].first);
    out += ':';
    out += args[i].second;
  }
  out += '}';
}

}  // namespace

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

KCORE_OBSERVER void Trace::SetProcessName(uint32_t pid, std::string name) {
  for (auto& [p, n] : process_names_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

KCORE_OBSERVER void Trace::SetThreadName(uint32_t pid, uint32_t tid, std::string name) {
  for (auto& [key, n] : thread_names_) {
    if (key.first == pid && key.second == tid) {
      n = std::move(name);
      return;
    }
  }
  thread_names_.push_back({{pid, tid}, std::move(name)});
}

KCORE_OBSERVER void Trace::AddComplete(
    std::string name, std::string cat, uint32_t pid, uint32_t tid,
    double ts_ns, double dur_ns,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

KCORE_OBSERVER void Trace::AddInstant(
    std::string name, std::string cat, uint32_t pid, uint32_t tid,
    double ts_ns, std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

KCORE_OBSERVER void Trace::AddCounter(std::string name, uint32_t pid, double ts_ns,
                       std::vector<std::pair<std::string, double>> series) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = kTraceCatMemory;
  e.phase = 'C';
  e.pid = pid;
  e.tid = 0;
  e.ts_ns = ts_ns;
  e.args.reserve(series.size());
  for (auto& [key, value] : series) {
    e.args.emplace_back(std::move(key), StrFormat("%.9g", value));
  }
  events_.push_back(std::move(e));
}

KCORE_OBSERVER void Trace::AddFlowBegin(std::string name, uint32_t pid, uint32_t tid,
                         double ts_ns, uint64_t id) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = kTraceCatRecovery;
  e.phase = 's';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.flow_id = id;
  events_.push_back(std::move(e));
}

KCORE_OBSERVER void Trace::AddFlowEnd(std::string name, uint32_t pid, uint32_t tid,
                       double ts_ns, uint64_t id) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = kTraceCatRecovery;
  e.phase = 'f';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.flow_id = id;
  events_.push_back(std::move(e));
}

KCORE_OBSERVER void Trace::Append(const Trace& other) {
  AppendFrom(other, 0);
}

KCORE_OBSERVER void Trace::AppendFrom(const Trace& other, size_t first_event) {
  if (first_event > other.events_.size()) first_event = other.events_.size();
  events_.insert(events_.end(), other.events_.begin() + first_event,
                 other.events_.end());
  for (const auto& [pid, name] : other.process_names_) {
    SetProcessName(pid, name);
  }
  for (const auto& [key, name] : other.thread_names_) {
    SetThreadName(key.first, key.second, name);
  }
}

KCORE_OBSERVER std::string Trace::ToChromeJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    comma();
    out += StrFormat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                     "\"tid\":0,\"args\":{\"name\":%s}}",
                     pid, JsonQuote(name).c_str());
  }
  for (const auto& [key, name] : thread_names_) {
    comma();
    out += StrFormat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                     "\"tid\":%u,\"args\":{\"name\":%s}}",
                     key.first, key.second, JsonQuote(name).c_str());
  }
  for (const TraceEvent& e : events_) {
    comma();
    out += '{';
    out += StrFormat("\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"pid\":%u,"
                     "\"tid\":%u,\"ts\":%s",
                     JsonQuote(e.name).c_str(), JsonQuote(e.cat).c_str(),
                     e.phase, e.pid, e.tid, MicrosField(e.ts_ns).c_str());
    if (e.phase == 'X') {
      out += StrFormat(",\"dur\":%s", MicrosField(e.dur_ns).c_str());
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (e.phase == 's' || e.phase == 'f') {
      out += StrFormat(",\"id\":%llu",
                       static_cast<unsigned long long>(e.flow_id));
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    }
    AppendArgs(out, e.args);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

KCORE_OBSERVER Status Trace::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

std::vector<Trace::KernelStat> Trace::KernelStats() const {
  std::map<std::string, KernelStat> by_name;
  for (const TraceEvent& e : events_) {
    if (e.phase != 'X' || e.cat != kTraceCatKernel) continue;
    KernelStat& s = by_name[e.name];
    if (s.count == 0) {
      s.name = e.name;
      s.min_ns = e.dur_ns;
      s.max_ns = e.dur_ns;
    }
    ++s.count;
    s.total_ns += e.dur_ns;
    s.min_ns = std::min(s.min_ns, e.dur_ns);
    s.max_ns = std::max(s.max_ns, e.dur_ns);
  }
  std::vector<KernelStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, s] : by_name) stats.push_back(std::move(s));
  std::sort(stats.begin(), stats.end(),
            [](const KernelStat& a, const KernelStat& b) {
              return a.total_ns > b.total_ns;
            });
  return stats;
}

KCORE_OBSERVER std::string Trace::KernelSummaryTable() const {
  const std::vector<KernelStat> stats = KernelStats();
  double grand_total = 0.0;
  for (const KernelStat& s : stats) grand_total += s.total_ns;
  std::string out =
      StrFormat("%-18s %8s %7s %12s %12s %12s %12s\n", "kernel", "count",
                "time%", "total_ms", "avg_us", "min_us", "max_us");
  for (const KernelStat& s : stats) {
    const double pct = grand_total > 0.0 ? 100.0 * s.total_ns / grand_total
                                         : 0.0;
    out += StrFormat(
        "%-18s %8llu %6.1f%% %12.3f %12.3f %12.3f %12.3f\n", s.name.c_str(),
        static_cast<unsigned long long>(s.count), pct, s.total_ns / 1e6,
        s.total_ns / 1e3 / static_cast<double>(s.count), s.min_ns / 1e3,
        s.max_ns / 1e3);
  }
  if (stats.empty()) out += "(no kernel spans recorded)\n";
  return out;
}

double Trace::TotalDurNs(const std::string& cat,
                         const std::string& name) const {
  double total = 0.0;
  for (const TraceEvent& e : events_) {
    if (e.phase != 'X' || e.cat != cat) continue;
    if (!name.empty() && e.name != name) continue;
    total += e.dur_ns;
  }
  return total;
}

}  // namespace kcore
