#ifndef KCORE_PERF_METRICS_H_
#define KCORE_PERF_METRICS_H_

#include <cstdint>

#include "perf/perf_counters.h"

namespace kcore {

/// Execution report common to every decomposition engine in this repo.
struct Metrics {
  /// Modeled computation time from the engine's cost model (the number the
  /// benchmark tables report, mirroring the paper's milliseconds columns).
  double modeled_ms = 0.0;
  /// Host wall-clock time actually spent (simulation overhead included).
  double wall_ms = 0.0;
  /// High-watermark of device-memory allocation (Table V).
  uint64_t peak_device_bytes = 0;
  /// Modeled data-loading time, reported separately from computation (the
  /// paper's "LD > 1hr" rows for VETGA are about loading, not compute).
  double load_ms = 0.0;
  /// Modeled-time split of the GPU peel pipeline (all zero for engines that
  /// do not distinguish phases). scan_ms + loop_ms + compact_ms ==
  /// modeled_ms for the single-device GPU peeler.
  double scan_ms = 0.0;     ///< ScanKernel launches (Algorithm 2).
  double loop_ms = 0.0;     ///< LoopKernel launches (Algorithm 3).
  double compact_ms = 0.0;  ///< CompactKernel launches (active-vertex lists).
  /// Loop-phase load imbalance: the time-weighted ratio of slowest-block to
  /// mean-active-block modeled time over all loop launches (sum of
  /// per-launch max block ns divided by sum of per-launch means over the
  /// blocks whose frontier buffer held work at launch). 1.0 = perfectly
  /// balanced; large values mean a few blocks gate every loop launch.
  /// 0.0 when the engine does not measure it.
  double loop_imbalance = 0.0;
  /// Peeling rounds / BSP supersteps executed.
  uint32_t rounds = 0;
  /// Inner iterations (sub-levels, h-index sweeps, frontier steps).
  uint32_t iterations = 0;
  /// Aggregated operation counts.
  PerfCounters counters;

  // Fault-recovery telemetry (resilient drivers only; all zero/false when no
  // fault plan is attached — see cusim/fault_injection.h).
  /// True when part of the decomposition ran on the CPU fallback path after
  /// the device died or exhausted its retry budget. The result is still
  /// exact; this flag reports that the modeled GPU time is partial.
  bool degraded = false;
  /// Transient launch/copy failures absorbed by op-level retry.
  uint32_t retries = 0;
  /// Round-boundary checkpoints of core[]/frontier state taken.
  uint32_t checkpoints_taken = 0;
  /// Rounds rolled back and re-executed after failing invariant validation
  /// (bitflip corruption caught by the post-round check).
  uint32_t levels_reexecuted = 0;
  /// Rounds completed by the CPU PKC warm start instead of the device.
  uint32_t cpu_fallback_levels = 0;
  /// Devices permanently lost mid-decomposition (multi-GPU: resharded onto
  /// survivors; single-GPU: CPU fallback).
  uint32_t devices_lost = 0;
  /// Wall-clock time spent inside recovery machinery: checkpointing,
  /// validation, rollback re-execution, and the CPU fallback.
  double recovery_ms = 0.0;

  // Cluster telemetry (the distributed engine only; all zero elsewhere —
  // see cluster/network.h).
  /// Modeled time spent in border-delta exchanges. With comm/compute
  /// overlap enabled only the un-hidden portion also appears in modeled_ms.
  double comm_ms = 0.0;
  /// Serialized bytes the modeled interconnect carried.
  uint64_t comm_bytes = 0;
  /// Aggregated link messages flushed (one per busy link per exchange).
  uint64_t comm_messages = 0;
};

}  // namespace kcore

#endif  // KCORE_PERF_METRICS_H_
