#ifndef KCORE_PERF_METRICS_H_
#define KCORE_PERF_METRICS_H_

#include <cstdint>

#include "perf/perf_counters.h"

namespace kcore {

/// Execution report common to every decomposition engine in this repo.
struct Metrics {
  /// Modeled computation time from the engine's cost model (the number the
  /// benchmark tables report, mirroring the paper's milliseconds columns).
  double modeled_ms = 0.0;
  /// Host wall-clock time actually spent (simulation overhead included).
  double wall_ms = 0.0;
  /// High-watermark of device-memory allocation (Table V).
  uint64_t peak_device_bytes = 0;
  /// Modeled data-loading time, reported separately from computation (the
  /// paper's "LD > 1hr" rows for VETGA are about loading, not compute).
  double load_ms = 0.0;
  /// Modeled-time split of the GPU peel pipeline (all zero for engines that
  /// do not distinguish phases). scan_ms + loop_ms + compact_ms ==
  /// modeled_ms for the single-device GPU peeler.
  double scan_ms = 0.0;     ///< ScanKernel launches (Algorithm 2).
  double loop_ms = 0.0;     ///< LoopKernel launches (Algorithm 3).
  double compact_ms = 0.0;  ///< CompactKernel launches (active-vertex lists).
  /// Peeling rounds / BSP supersteps executed.
  uint32_t rounds = 0;
  /// Inner iterations (sub-levels, h-index sweeps, frontier steps).
  uint32_t iterations = 0;
  /// Aggregated operation counts.
  PerfCounters counters;
};

}  // namespace kcore

#endif  // KCORE_PERF_METRICS_H_
