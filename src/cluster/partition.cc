#include "cluster/partition.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/strings.h"

namespace kcore {

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kDegreeBalanced:
      return "degree";
    case PartitionStrategy::kEdgeCut:
      return "edgecut";
  }
  return "unknown";
}

bool ParsePartitionStrategy(const std::string& token,
                            PartitionStrategy* out) {
  for (PartitionStrategy strategy : AllPartitionStrategies()) {
    if (token == PartitionStrategyName(strategy)) {
      *out = strategy;
      return true;
    }
  }
  return false;
}

const std::vector<PartitionStrategy>& AllPartitionStrategies() {
  static const std::vector<PartitionStrategy> kAll = {
      PartitionStrategy::kContiguous, PartitionStrategy::kDegreeBalanced,
      PartitionStrategy::kEdgeCut};
  return kAll;
}

double ClusterPartition::BalanceRatio() const {
  uint64_t total = 0;
  uint64_t max_mass = 0;
  for (const NodePartition& node : nodes) {
    total += node.edge_mass;
    max_mass = std::max(max_mass, node.edge_mass);
  }
  if (total == 0 || num_nodes == 0) return 0.0;
  const double share = static_cast<double>(total) / num_nodes;
  return static_cast<double>(max_mass) / share;
}

namespace {

/// Rebuilds owned lists, mirrors, edge mass and cut counts from the owner
/// map — shared by every strategy and by RepartitionOntoSurvivors.
void FinalizeFromOwner(const CsrGraph& graph, ClusterPartition* partition) {
  const VertexId n = graph.NumVertices();
  partition->nodes.assign(partition->num_nodes, NodePartition());
  partition->total_cut_edges = 0;
  for (VertexId v = 0; v < n; ++v) {
    partition->nodes[partition->owner[v]].owned.push_back(v);
  }
  // Mirror sets: per node, the deduplicated foreign endpoints of its owned
  // adjacency. A scratch stamp array keeps this O(V + E) total.
  std::vector<uint32_t> stamp(n, UINT32_MAX);
  for (uint32_t node = 0; node < partition->num_nodes; ++node) {
    NodePartition& share = partition->nodes[node];
    for (VertexId v : share.owned) {
      share.edge_mass += graph.Degree(v);
      for (VertexId u : graph.Neighbors(v)) {
        if (partition->owner[u] == node) continue;
        ++share.cut_edges;
        if (stamp[u] != node) {
          stamp[u] = node;
          share.mirrors.push_back(u);
        }
      }
    }
    std::sort(share.mirrors.begin(), share.mirrors.end());
    partition->total_cut_edges += share.cut_edges;
  }
}

void BuildContiguous(const CsrGraph& graph, ClusterPartition* partition) {
  const VertexId n = graph.NumVertices();
  const uint32_t num_nodes = partition->num_nodes;
  const VertexId chunk = (n + num_nodes - 1) / num_nodes;
  for (VertexId v = 0; v < n; ++v) {
    partition->owner[v] =
        chunk == 0 ? 0 : std::min<uint32_t>(v / chunk, num_nodes - 1);
  }
}

void BuildDegreeBalanced(const CsrGraph& graph, ClusterPartition* partition) {
  const VertexId n = graph.NumVertices();
  const uint32_t num_nodes = partition->num_nodes;
  const double share =
      static_cast<double>(graph.NumDirectedEdges()) / num_nodes;
  // Sweep the ID range, closing a node's range once the running mass passes
  // its cumulative share: node i's mass stays under share + max_degree.
  uint64_t mass = 0;
  uint32_t node = 0;
  for (VertexId v = 0; v < n; ++v) {
    while (node + 1 < num_nodes &&
           static_cast<double>(mass) >= share * (node + 1)) {
      ++node;
    }
    partition->owner[v] = node;
    mass += graph.Degree(v);
  }
}

void BuildEdgeCut(const CsrGraph& graph, ClusterPartition* partition) {
  const VertexId n = graph.NumVertices();
  const uint32_t num_nodes = partition->num_nodes;
  // Hubs first: placing high-degree vertices early gives their tails a
  // strong co-location signal (the streaming-partition ordering trick).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint32_t da = graph.Degree(a);
    const uint32_t db = graph.Degree(b);
    return da != db ? da > db : a < b;
  });

  const double share =
      std::max(1.0, static_cast<double>(graph.NumDirectedEdges()) / num_nodes);
  const double capacity =
      kEdgeCutCapacityFactor * share + graph.MaxDegree();
  std::vector<uint64_t> load(num_nodes, 0);
  std::vector<double> affinity(num_nodes, 0.0);
  std::fill(partition->owner.begin(), partition->owner.end(), UINT32_MAX);
  for (VertexId v : order) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (VertexId u : graph.Neighbors(v)) {
      if (partition->owner[u] != UINT32_MAX) {
        affinity[partition->owner[u]] += 1.0;
      }
    }
    // LDG score: placed-neighbor count discounted by the node's fill level;
    // nodes at capacity are out. Ties (including the no-placed-neighbors
    // cold start) go to the least-loaded node, then the lowest index —
    // fully deterministic.
    int best = -1;
    double best_score = -1.0;
    for (uint32_t node = 0; node < num_nodes; ++node) {
      const double fill = static_cast<double>(load[node]) / capacity;
      if (fill >= 1.0) continue;
      const double score = affinity[node] * (1.0 - fill);
      if (best < 0 || score > best_score ||
          (score == best_score && load[node] < load[best])) {
        best = static_cast<int>(node);
        best_score = score;
      }
    }
    if (best < 0) {
      // Everyone at capacity (degenerate graphs): fall back to least loaded.
      best = 0;
      for (uint32_t node = 1; node < num_nodes; ++node) {
        if (load[node] < load[best]) best = static_cast<int>(node);
      }
    }
    partition->owner[v] = static_cast<uint32_t>(best);
    load[best] += std::max<uint32_t>(1, graph.Degree(v));
  }
}

}  // namespace

StatusOr<ClusterPartition> BuildPartition(const CsrGraph& graph,
                                          PartitionStrategy strategy,
                                          uint32_t num_nodes) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  ClusterPartition partition;
  partition.strategy = strategy;
  partition.num_nodes = num_nodes;
  partition.owner.assign(graph.NumVertices(), 0);
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      BuildContiguous(graph, &partition);
      break;
    case PartitionStrategy::kDegreeBalanced:
      BuildDegreeBalanced(graph, &partition);
      break;
    case PartitionStrategy::kEdgeCut:
      BuildEdgeCut(graph, &partition);
      break;
  }
  FinalizeFromOwner(graph, &partition);
  return partition;
}

Status RepartitionOntoSurvivors(const CsrGraph& graph,
                                const std::vector<uint8_t>& dead,
                                ClusterPartition* partition) {
  if (dead.size() != partition->num_nodes) {
    return Status::FailedPrecondition("dead mask mis-sized for partition");
  }
  bool any_survivor = false;
  for (uint32_t node = 0; node < partition->num_nodes; ++node) {
    any_survivor = any_survivor || dead[node] == 0;
  }
  if (!any_survivor) {
    return Status::FailedPrecondition("no surviving node to repartition onto");
  }
  // Each dead node's whole share moves to the currently lightest survivor —
  // a share-granular merge (like the multi-GPU adjacent-range merge) so the
  // survivor rebuilds one partition, not a vertex-by-vertex scatter.
  std::vector<uint64_t> load(partition->num_nodes, 0);
  for (uint32_t node = 0; node < partition->num_nodes; ++node) {
    if (dead[node] == 0) load[node] = partition->nodes[node].edge_mass;
  }
  for (uint32_t node = 0; node < partition->num_nodes; ++node) {
    if (dead[node] == 0 || partition->nodes[node].owned.empty()) continue;
    int target = -1;
    for (uint32_t cand = 0; cand < partition->num_nodes; ++cand) {
      if (dead[cand] != 0) continue;
      if (target < 0 || load[cand] < load[target]) {
        target = static_cast<int>(cand);
      }
    }
    for (VertexId v : partition->nodes[node].owned) {
      partition->owner[v] = static_cast<uint32_t>(target);
    }
    load[target] += partition->nodes[node].edge_mass;
  }
  FinalizeFromOwner(graph, partition);
  return Status::OK();
}

bool ValidatePartition(const CsrGraph& graph,
                       const ClusterPartition& partition, std::string* why) {
  const auto fail = [&](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  const VertexId n = graph.NumVertices();
  if (partition.num_nodes == 0) return fail("num_nodes == 0");
  if (partition.owner.size() != n) return fail("owner map mis-sized");
  if (partition.nodes.size() != partition.num_nodes) {
    return fail("nodes vector mis-sized");
  }
  // Disjoint cover: every vertex appears in exactly the owned list its
  // owner entry names, and the owned lists are sorted.
  uint64_t covered = 0;
  uint64_t total_cut = 0;
  for (uint32_t node = 0; node < partition.num_nodes; ++node) {
    const NodePartition& share = partition.nodes[node];
    if (!std::is_sorted(share.owned.begin(), share.owned.end())) {
      return fail(StrFormat("node %u: owned list not sorted", node));
    }
    uint64_t mass = 0;
    uint64_t cut = 0;
    for (size_t i = 0; i < share.owned.size(); ++i) {
      const VertexId v = share.owned[i];
      if (v >= n) return fail(StrFormat("node %u owns out-of-range %u", node, v));
      if (i > 0 && share.owned[i - 1] == v) {
        return fail(StrFormat("node %u owns %u twice", node, v));
      }
      if (partition.owner[v] != node) {
        return fail(StrFormat("owner[%u]=%u but node %u lists it", v,
                              partition.owner[v], node));
      }
      mass += graph.Degree(v);
      for (VertexId u : graph.Neighbors(v)) {
        if (partition.owner[u] != node) ++cut;
      }
    }
    covered += share.owned.size();
    if (mass != share.edge_mass) {
      return fail(StrFormat("node %u edge_mass mismatch", node));
    }
    if (cut != share.cut_edges) {
      return fail(StrFormat("node %u cut_edges mismatch", node));
    }
    total_cut += cut;
    // Mirrors: sorted, unique, foreign-owned, and exactly the set of
    // foreign endpoints of the owned adjacency.
    if (!std::is_sorted(share.mirrors.begin(), share.mirrors.end())) {
      return fail(StrFormat("node %u: mirror list not sorted", node));
    }
    std::unordered_set<VertexId> expected;
    for (VertexId v : share.owned) {
      for (VertexId u : graph.Neighbors(v)) {
        if (partition.owner[u] != node) expected.insert(u);
      }
    }
    if (expected.size() != share.mirrors.size()) {
      return fail(StrFormat("node %u: %zu mirrors listed, %zu adjacent", node,
                            share.mirrors.size(), expected.size()));
    }
    for (size_t i = 0; i < share.mirrors.size(); ++i) {
      const VertexId m = share.mirrors[i];
      if (m >= n) return fail(StrFormat("node %u mirror out of range", node));
      if (i > 0 && share.mirrors[i - 1] == m) {
        return fail(StrFormat("node %u mirrors %u twice", node, m));
      }
      if (partition.owner[m] == node) {
        return fail(
            StrFormat("node %u mirrors its own vertex %u (no valid foreign "
                      "master)",
                      node, m));
      }
      if (expected.find(m) == expected.end()) {
        return fail(StrFormat("node %u mirrors non-adjacent %u", node, m));
      }
    }
  }
  if (covered != n) {
    return fail(StrFormat("owned lists cover %llu of %u vertices",
                          static_cast<unsigned long long>(covered), n));
  }
  if (total_cut != partition.total_cut_edges) {
    return fail("total_cut_edges mismatch");
  }
  return true;
}

}  // namespace kcore
