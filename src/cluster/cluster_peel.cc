#include "cluster/cluster_peel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "core/resilience.h"
#include "cpu/pkc.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

/// One device of one node: a contiguous slice of the node's owned-vertex
/// list, its CSR resident in its own device memory, and outgoing delta
/// buffers (intra-node and per-foreign-node).
struct NodeDevice {
  /// Slice [slice_begin, slice_end) of the owning node's `owned` list.
  size_t slice_begin = 0;
  size_t slice_end = 0;
  std::unique_ptr<sim::Device> device;
  sim::DeviceArray<EdgeIndex> d_offsets;  // slice CSR offsets, rebased
  sim::DeviceArray<VertexId> d_neighbors;  // global endpoint IDs
  sim::DeviceArray<uint32_t> d_deg;        // owned slice only
  sim::DeviceArray<VertexId> d_buffer;     // local frontier buffer
  /// Decrements for vertices of the same node but another device, applied
  /// by the master between sub-rounds at intra-node (no network) cost.
  std::unordered_map<VertexId, uint32_t> intra_updates;
  /// Decrements for foreign-node masters, keyed by destination node;
  /// drained into the ClusterNetwork per sub-round (where per-link
  /// aggregation across this node's devices happens).
  std::unordered_map<uint32_t, std::unordered_map<VertexId, uint32_t>> outbox;
  PerfCounters counters;  // per-sub-round, merged by master
  /// Per-slice active-vertex compaction (same policy as the multi-GPU
  /// workers): positions into the node's owned list.
  std::vector<size_t> active;
  bool use_active = false;
  uint64_t local_removed = 0;
};

/// One cluster node: its partition share split among its devices.
struct Node {
  std::vector<NodeDevice> devices;
  /// Owned-list slice chunk: device d covers [d*chunk, min((d+1)*chunk, sz)).
  size_t chunk = 0;
  bool alive = true;
};

/// Round-boundary checkpoint (see multi_gpu_peel.cc): the verified degree
/// snapshot, claim flags, and cumulative removed count.
struct RoundCheckpoint {
  std::vector<uint32_t> deg;
  std::vector<uint8_t> claimed;
  uint64_t removed = 0;
};

}  // namespace

StatusOr<DecomposeResult> RunClusterPeel(const CsrGraph& graph,
                                         const ClusterOptions& options) {
  if (options.num_nodes == 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (options.devices_per_node == 0) {
    return Status::InvalidArgument("devices_per_node must be positive");
  }
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const uint32_t num_nodes = options.num_nodes;
  const uint32_t devices_per_node = options.devices_per_node;
  const uint32_t num_lanes = num_nodes * devices_per_node;
  DecomposeResult result;
  ModeledClock clock(GpuNativeCostModel());
  ClusterNetwork network(num_nodes, options.network);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : DefaultThreadPool();

  KCORE_ASSIGN_OR_RETURN(
      ClusterPartition partition,
      BuildPartition(graph, options.partition, num_nodes));
  if (std::string why; !ValidatePartition(graph, partition, &why)) {
    return Status::Internal(
        StrFormat("%s partition failed its invariants: %s",
                  PartitionStrategyName(options.partition), why.c_str()));
  }

  // simprof: the master assembles the cluster timeline (nodes peel through
  // host pointers); device alloc/copy traces merge in at the end. Comm
  // spans live on the master's "network" thread and may overlap the next
  // sub-round's compute spans — that is the overlap, drawn.
  const bool tracing = options.trace != nullptr;
  Trace trace;
  const auto now_ns = [&] { return clock.ms() * 1e6; };
  if (tracing) {
    trace.SetProcessName(0, "master");
    trace.SetThreadName(0, kTraceTidKernels, "network");
    trace.SetThreadName(0, kTraceTidRanges, "rounds");
  }

  // Sub-round imbalance accumulators (Metrics.loop_imbalance): slowest vs
  // mean alive-lane modeled ns.
  double subround_max_ns = 0.0;
  double subround_mean_ns = 0.0;
  const auto finish_loop_imbalance = [&]() {
    result.metrics.loop_imbalance =
        subround_mean_ns > 0.0 ? subround_max_ns / subround_mean_ns : 0.0;
  };

  // --- Vertex location maps, rebuilt after any repartition. ---
  // owner is partition.owner; slot_of[v] = position of v in its owner's
  // owned list (device index and slice offset both derive from it).
  std::vector<size_t> slot_of(n, 0);
  std::vector<Node> nodes(num_nodes);
  const auto rebuild_location_maps = [&] {
    for (uint32_t node = 0; node < num_nodes; ++node) {
      const std::vector<VertexId>& owned = partition.nodes[node].owned;
      for (size_t i = 0; i < owned.size(); ++i) slot_of[owned[i]] = i;
      nodes[node].chunk =
          (owned.size() + devices_per_node - 1) / devices_per_node;
    }
  };
  const auto device_index_for_slot = [&](uint32_t node, size_t slot) {
    const size_t chunk = nodes[node].chunk;
    return chunk == 0 ? 0u
                      : static_cast<uint32_t>(std::min<size_t>(
                            slot / chunk, devices_per_node - 1));
  };

  // --- Create the devices (partitions are built below, from the
  // checkpoint, so post-loss rebuilds reuse the same path). ---
  for (uint32_t node = 0; node < num_nodes; ++node) {
    nodes[node].devices.resize(devices_per_node);
    for (uint32_t d = 0; d < devices_per_node; ++d) {
      sim::DeviceOptions device_options = options.node_device;
      if (node < options.node_fault_specs.size() &&
          !options.node_fault_specs[node].empty()) {
        device_options.fault_spec = options.node_fault_specs[node];
      }
      if (tracing) {
        device_options.profile = true;
        device_options.profile_pid = 1 + node * devices_per_node + d;
        device_options.profile_name = StrFormat("node%u.dev%u", node, d);
      }
      nodes[node].devices[d].device =
          std::make_unique<sim::Device>(device_options);
    }
  }
  bool any_faults = false;
  for (const Node& node : nodes) {
    for (const NodeDevice& dev : node.devices) {
      any_faults = any_faults || dev.device->fault_injection_enabled();
    }
  }
  const bool resilient = options.resilience.enabled && any_faults;

  const auto flush_trace = [&] {
    if (!tracing) return;
    for (const Node& node : nodes) {
      for (const NodeDevice& dev : node.devices) {
        if (sim::SimProfiler* prof = dev.device->profiler()) {
          trace.Append(prof->trace());
        }
      }
    }
    *options.trace = std::move(trace);
  };

  // Bounded retry for transient (Unavailable) copy failures.
  const auto with_retry = [&](auto&& op) -> Status {
    Status st = op();
    if (!resilient) return st;
    for (uint32_t attempt = 0;
         st.IsUnavailable() && attempt < options.resilience.max_op_retries;
         ++attempt) {
      ++result.metrics.retries;
      st = op();
    }
    return st;
  };

  RoundCheckpoint ckpt;
  ckpt.deg = graph.DegreeArray();
  ckpt.claimed.assign(n, 0);
  ckpt.removed = 0;

  // (Re)builds one device's slice of `node`'s share from the host graph and
  // the checkpoint — initial load and post-repartition rebuilds alike.
  const auto build_device = [&](uint32_t node_idx, uint32_t d) -> Status {
    Node& node = nodes[node_idx];
    NodeDevice& dev = node.devices[d];
    const std::vector<VertexId>& owned = partition.nodes[node_idx].owned;
    dev.slice_begin = std::min(owned.size(), d * node.chunk);
    dev.slice_end = std::min(owned.size(), (d + 1) * node.chunk);
    if (d + 1 == devices_per_node) dev.slice_end = owned.size();
    dev.use_active = false;
    dev.active.clear();
    dev.intra_updates.clear();
    dev.outbox.clear();
    const size_t local_n = dev.slice_end - dev.slice_begin;

    std::vector<EdgeIndex> offsets(local_n + 1, 0);
    for (size_t i = 0; i < local_n; ++i) {
      offsets[i + 1] = offsets[i] + graph.Degree(owned[dev.slice_begin + i]);
    }
    std::vector<VertexId> neighbors;
    neighbors.reserve(offsets[local_n]);
    std::vector<uint32_t> deg(std::max<size_t>(1, local_n), 0);
    uint64_t removed_in_slice = 0;
    for (size_t i = 0; i < local_n; ++i) {
      const VertexId v = owned[dev.slice_begin + i];
      const auto nbrs = graph.Neighbors(v);
      neighbors.insert(neighbors.end(), nbrs.begin(), nbrs.end());
      deg[i] = ckpt.deg[v];
      if (ckpt.claimed[v] != 0) ++removed_in_slice;
    }

    dev.d_offsets.Reset();
    dev.d_neighbors.Reset();
    dev.d_deg.Reset();
    dev.d_buffer.Reset();
    // All four arrays are fully overwritten before any read.
    KCORE_ASSIGN_OR_RETURN(dev.d_offsets,
                           dev.device->AllocUninit<EdgeIndex>(
                               offsets.size(), "node_offsets"));
    KCORE_ASSIGN_OR_RETURN(
        dev.d_neighbors,
        dev.device->AllocUninit<VertexId>(std::max<size_t>(1, neighbors.size()),
                                          "node_neighbors"));
    KCORE_ASSIGN_OR_RETURN(
        dev.d_deg, dev.device->AllocUninit<uint32_t>(deg.size(), "node_deg"));
    KCORE_ASSIGN_OR_RETURN(
        dev.d_buffer,
        dev.device->AllocUninit<VertexId>(std::max<size_t>(1024, local_n),
                                          "node_buffer"));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return dev.d_offsets.CopyFromHost(offsets); }));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return dev.d_neighbors.CopyFromHost(neighbors); }));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return dev.d_deg.CopyFromHost(deg); }));
    // Only the degree slice is checkpoint-restorable, so it alone is
    // eligible for injected bitflips.
    dev.device->MarkCorruptible(dev.d_deg, "node_deg");
    dev.local_removed = removed_in_slice;
    return Status::OK();
  };
  const auto build_node = [&](uint32_t node_idx) -> Status {
    for (uint32_t d = 0; d < devices_per_node; ++d) {
      KCORE_RETURN_IF_ERROR(build_device(node_idx, d));
    }
    return Status::OK();
  };

  // Finishes on CPU PKC from the checkpoint once no usable cluster remains.
  const auto cpu_finish = [&](uint32_t start_k) -> DecomposeResult {
    WallTimer recovery;
    if (tracing) {
      trace.AddInstant(StrFormat("cpu_fallback k=%u", start_k),
                       kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
    }
    result.metrics.degraded = true;
    DecomposeResult cpu = ResumePkc(graph, std::move(ckpt.deg), start_k);
    result.core = std::move(cpu.core);
    result.metrics.cpu_fallback_levels = cpu.metrics.rounds;
    result.metrics.rounds += cpu.metrics.rounds;
    result.metrics.counters += cpu.metrics.counters;
    result.metrics.modeled_ms = clock.ms() + cpu.metrics.modeled_ms;
    uint64_t max_peak = 0;
    for (const Node& node : nodes) {
      for (const NodeDevice& dev : node.devices) {
        max_peak = std::max(max_peak, dev.device->peak_bytes());
      }
    }
    result.metrics.peak_device_bytes = max_peak;
    result.metrics.comm_ms = network.stats().comm_ns / 1e6;
    result.metrics.comm_bytes = network.stats().bytes_on_wire;
    result.metrics.comm_messages = network.stats().messages;
    result.metrics.recovery_ms += recovery.ElapsedMillis();
    finish_loop_imbalance();
    result.metrics.wall_ms = timer.ElapsedMillis();
    flush_trace();
    return result;
  };

  // Repartitions every unhandled dead node's share onto the lightest
  // survivor (cluster/partition.h) and rebuilds the survivors from the
  // checkpoint. A survivor that fails its rebuild is declared dead itself
  // and the pass restarts; each pass shrinks the cluster, so this
  // terminates. DeviceLost once nobody survives.
  std::vector<uint8_t> death_counted(num_nodes, 0);
  const auto handle_deaths = [&]() -> Status {
    bool pending = false;
    for (uint32_t node = 0; node < num_nodes; ++node) {
      if (!nodes[node].alive && death_counted[node] == 0) {
        death_counted[node] = 1;
        pending = true;
        ++result.metrics.devices_lost;
        if (tracing) {
          trace.AddInstant(StrFormat("node_lost node%u", node),
                           kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
        }
      }
    }
    if (!pending) return Status::OK();
    while (true) {
      std::vector<uint8_t> dead(num_nodes, 0);
      bool any_alive = false;
      for (uint32_t node = 0; node < num_nodes; ++node) {
        dead[node] = nodes[node].alive ? 0 : 1;
        any_alive = any_alive || nodes[node].alive;
        if (!nodes[node].alive) {
          for (NodeDevice& dev : nodes[node].devices) {
            dev.d_offsets.Reset();
            dev.d_neighbors.Reset();
            dev.d_deg.Reset();
            dev.d_buffer.Reset();
            dev.active.clear();
            dev.use_active = false;
            dev.intra_updates.clear();
            dev.outbox.clear();
          }
        }
      }
      if (!any_alive) return Status::DeviceLost("all cluster nodes lost");
      KCORE_RETURN_IF_ERROR(
          RepartitionOntoSurvivors(graph, dead, &partition));
      rebuild_location_maps();
      bool again = false;
      for (uint32_t node = 0; node < num_nodes; ++node) {
        if (!nodes[node].alive) continue;
        Status built = build_node(node);
        if (!built.ok()) {
          nodes[node].alive = false;
          again = true;
          break;
        }
      }
      if (!again) {
        if (tracing) {
          trace.AddInstant("repartition_onto_survivors", kTraceCatRecovery, 0,
                           kTraceTidRanges, now_ns());
        }
        return Status::OK();
      }
    }
  };

  // --- Initial partition load. A node that cannot even load starts out
  // dead and its share is repartitioned like a mid-run loss. ---
  rebuild_location_maps();
  for (uint32_t node = 0; node < num_nodes; ++node) {
    Status built = build_node(node);
    if (!built.ok()) {
      if (resilient && (built.IsOutOfMemory() || built.IsUnavailable() ||
                        built.IsDeviceLost())) {
        nodes[node].alive = false;
        continue;
      }
      return built;
    }
  }
  if (Status cluster = handle_deaths(); !cluster.ok()) {
    if (resilient && options.resilience.cpu_fallback) return cpu_finish(0);
    return cluster;
  }

  // --- Live peeling state (checkpointed at every round boundary). ---
  std::vector<uint8_t> claimed(n, 0);
  std::atomic<uint64_t> removed{0};

  auto deg_of = [&](VertexId v) -> uint32_t& {
    const uint32_t node = partition.owner[v];
    const size_t slot = slot_of[v];
    NodeDevice& dev = nodes[node].devices[device_index_for_slot(node, slot)];
    return dev.d_deg.data()[slot - dev.slice_begin];
  };

  // Restores every survivor to the checkpoint.
  const auto rollback_alive = [&]() -> Status {
    std::copy(ckpt.claimed.begin(), ckpt.claimed.end(), claimed.begin());
    removed.store(ckpt.removed, std::memory_order_relaxed);
    for (uint32_t node_idx = 0; node_idx < num_nodes; ++node_idx) {
      Node& node = nodes[node_idx];
      if (!node.alive) continue;
      const std::vector<VertexId>& owned = partition.nodes[node_idx].owned;
      for (NodeDevice& dev : node.devices) {
        dev.use_active = false;
        dev.active.clear();
        dev.intra_updates.clear();
        dev.outbox.clear();
        const size_t local_n = dev.slice_end - dev.slice_begin;
        std::vector<uint32_t> deg(std::max<size_t>(1, local_n), 0);
        uint64_t removed_in_slice = 0;
        for (size_t i = 0; i < local_n; ++i) {
          const VertexId v = owned[dev.slice_begin + i];
          deg[i] = ckpt.deg[v];
          if (ckpt.claimed[v] != 0) ++removed_in_slice;
        }
        dev.local_removed = removed_in_slice;
        if (local_n == 0) continue;
        Status st = with_retry([&] {
          return dev.d_deg.CopyFromHost(
              std::span<const uint32_t>(deg).first(local_n));
        });
        if (st.IsDeviceLost()) node.alive = false;
        KCORE_RETURN_IF_ERROR(st);
      }
    }
    return Status::OK();
  };

  // Gathers every device's degree slice into `out` for validation.
  const auto gather_deg = [&](std::vector<uint32_t>& out) -> Status {
    out.resize(n);
    for (uint32_t node_idx = 0; node_idx < num_nodes; ++node_idx) {
      Node& node = nodes[node_idx];
      if (!node.alive) continue;
      const std::vector<VertexId>& owned = partition.nodes[node_idx].owned;
      for (NodeDevice& dev : node.devices) {
        const size_t local_n = dev.slice_end - dev.slice_begin;
        if (local_n == 0) continue;
        std::vector<uint32_t> deg(local_n, 0);
        Status st = with_retry(
            [&] { return dev.d_deg.CopyToHost(std::span<uint32_t>(deg)); });
        if (st.IsDeviceLost()) node.alive = false;
        KCORE_RETURN_IF_ERROR(st);
        for (size_t i = 0; i < local_n; ++i) {
          out[owned[dev.slice_begin + i]] = deg[i];
        }
      }
    }
    return Status::OK();
  };

  uint32_t k = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;
  std::vector<uint32_t> post_deg;
  std::vector<std::unordered_map<VertexId, uint32_t>> inboxes(num_nodes);
  // Comm/compute overlap: exchange time not yet charged to the clock,
  // hidden behind the next sub-round's compute (ClusterOptions::overlap).
  double pending_comm_ns = 0.0;
  const auto drain_pending_comm = [&] {
    clock.AddOverheadNs(pending_comm_ns);
    pending_comm_ns = 0.0;
  };

  // One round k to its border fixpoint, ending (resilient mode) with the
  // gathered-state validation against the checkpoint.
  const auto run_round = [&]() -> Status {
    uint64_t subrounds = 0;
    // Corruption can manufacture endless border traffic; a clean round
    // never needs more sub-rounds than vertices.
    const uint64_t subround_limit = static_cast<uint64_t>(n) + 2;
    while (true) {
      ++result.metrics.iterations;
      if (++subrounds > subround_limit) {
        return Status::Corruption(StrFormat(
            "round k=%u: no fixpoint after %llu sub-rounds — suspected "
            "degree corruption",
            k, static_cast<unsigned long long>(subrounds - 1)));
      }
      std::atomic<uint64_t> removed_this_subround{0};
      std::atomic<bool> death{false};

      // --- Each device peels its slice (parallel lanes; a lane only
      // touches its owned deg entries and its private delta buffers). ---
      pool.RunLanes(num_lanes, [&](uint32_t lane) {
        const uint32_t node_idx = lane / devices_per_node;
        const uint32_t d = lane % devices_per_node;
        Node& node = nodes[node_idx];
        if (!node.alive) return;
        NodeDevice& dev = node.devices[d];
        if (resilient) {
          // Liveness probe at sub-round granularity — the launch-domain
          // fault point for nodes that peel through host pointers. Any
          // device loss takes the whole node down (node-granular recovery).
          const Status health = dev.device->HealthCheck("subround");
          if (health.IsDeviceLost()) {
            node.alive = false;
            death.store(true, std::memory_order_relaxed);
            return;
          }
        }
        const std::vector<VertexId>& owned = partition.nodes[node_idx].owned;
        PerfCounters& c = dev.counters;
        const EdgeIndex* offsets = dev.d_offsets.data();
        const VertexId* neighbors = dev.d_neighbors.data();
        uint32_t* deg = dev.d_deg.data();
        VertexId* buffer = dev.d_buffer.data();
        const size_t local_n = dev.slice_end - dev.slice_begin;

        // Per-slice active compaction (multi-GPU policy: rebuild the dense
        // survivor list at every halving).
        const uint64_t remaining = local_n - dev.local_removed;
        const uint64_t sweep_len =
            dev.use_active ? dev.active.size() : local_n;
        if (static_cast<double>(remaining) < 0.5 * sweep_len) {
          std::vector<size_t> next;
          next.reserve(remaining);
          const auto keep = [&](size_t slot) {
            ++c.global_reads;
            if (claimed[owned[slot]] == 0) next.push_back(slot);
          };
          if (dev.use_active) {
            for (size_t slot : dev.active) keep(slot);
          } else {
            for (size_t slot = dev.slice_begin; slot < dev.slice_end; ++slot) {
              keep(slot);
            }
          }
          c.global_writes += next.size();
          ++c.compactions;
          dev.active = std::move(next);
          dev.use_active = true;
        }

        // Scan the slice (or its compacted active list) for unclaimed
        // degree-k vertices.
        uint64_t head = 0;
        uint64_t tail = 0;
        auto scan_slot = [&](size_t slot) {
          ++c.vertices_scanned;
          ++c.global_reads;
          const VertexId v = owned[slot];
          if (claimed[v] == 0 && deg[slot - dev.slice_begin] == k) {
            claimed[v] = 1;
            buffer[tail++] = static_cast<VertexId>(slot);
            ++c.buffer_appends;
          }
        };
        if (dev.use_active) {
          c.scan_vertices_skipped += local_n - dev.active.size();
          for (size_t slot : dev.active) scan_slot(slot);
        } else {
          for (size_t slot = dev.slice_begin; slot < dev.slice_end; ++slot) {
            scan_slot(slot);
          }
        }
        // Local cascade. Intra-slice decrements apply directly; same-node
        // other-device ones buffer at intra-node cost; foreign-node ones
        // buffer into the per-destination outbox for the network.
        uint64_t processed = 0;
        while (head < tail) {
          const size_t slot = buffer[head++];
          ++processed;
          const size_t local = slot - dev.slice_begin;
          ++c.loop_bin_warp;
          for (EdgeIndex e = offsets[local]; e < offsets[local + 1]; ++e) {
            const VertexId u = neighbors[e];
            ++c.edges_traversed;
            ++c.global_reads;
            const uint32_t u_node = partition.owner[u];
            if (u_node == node_idx) {
              const size_t u_slot = slot_of[u];
              if (u_slot >= dev.slice_begin && u_slot < dev.slice_end) {
                uint32_t& du = deg[u_slot - dev.slice_begin];
                if (du > k) {
                  --du;
                  ++c.global_atomics;
                  if (du == k && claimed[u] == 0) {
                    claimed[u] = 1;
                    buffer[tail++] = static_cast<VertexId>(u_slot);
                    ++c.buffer_appends;
                  }
                }
              } else {
                ++dev.intra_updates[u];
                ++c.global_atomics;
              }
            } else {
              // Border edge: buffer the decrement for the network.
              ++dev.outbox[u_node][u];
              ++c.messages;
            }
          }
        }
        dev.local_removed += tail;
        if (processed != 0) {
          removed_this_subround.fetch_add(processed,
                                          std::memory_order_relaxed);
        }
      });

      // Modeled time: the slowest device lane gates the sub-round; the
      // previous sub-round's exchange hides behind it when overlap is on.
      uint32_t alive_lanes = 0;
      {
        const double subround_start_ns = now_ns();
        std::vector<PerfCounters> lane_counters;
        lane_counters.reserve(num_lanes);
        double max_ns = 0.0;
        double sum_ns = 0.0;
        for (uint32_t node_idx = 0; node_idx < num_nodes; ++node_idx) {
          Node& node = nodes[node_idx];
          for (uint32_t d = 0; d < devices_per_node; ++d) {
            NodeDevice& dev = node.devices[d];
            if (node.alive) {
              ++alive_lanes;
              const double ns = clock.cost().UnitTimeNs(dev.counters);
              max_ns = std::max(max_ns, ns);
              sum_ns += ns;
              if (tracing) {
                trace.AddComplete(
                    StrFormat("subround k=%u", k), kTraceCatKernel,
                    1 + node_idx * devices_per_node + d, kTraceTidKernels,
                    subround_start_ns, ns,
                    {{"subround",
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            subrounds))}});
              }
            }
            lane_counters.push_back(dev.counters);
            result.metrics.counters += dev.counters;
            dev.counters = PerfCounters();
          }
        }
        if (alive_lanes > 0) {
          subround_max_ns += max_ns;
          subround_mean_ns += sum_ns / alive_lanes;
        }
        clock.AddParallelPhase(lane_counters);
        clock.AddOverheadNs(2 * clock.cost().kernel_launch_ns);
        result.metrics.counters.kernel_launches += 2 * alive_lanes;
        // The un-hidden remainder of the in-flight exchange (0 when the
        // compute phase covered it; everything when overlap is off —
        // pending is only ever nonzero with overlap on).
        pending_comm_ns = std::max(0.0, pending_comm_ns - max_ns);
        drain_pending_comm();
      }
      if (death.load(std::memory_order_relaxed)) {
        return Status::DeviceLost("cluster node lost mid-round");
      }

      // --- Master, phase 1: intra-node deltas (same node, other device) —
      // applied at intra-node cost, no network traffic. ---
      uint64_t intra_applied = 0;
      uint64_t intra_entries = 0;
      for (Node& node : nodes) {
        for (NodeDevice& dev : node.devices) {
          intra_entries += dev.intra_updates.size();
          for (const auto& [u, count] : dev.intra_updates) {
            uint32_t& du = deg_of(u);
            if (du > k) {
              // Clamp at k: decrements past the k-shell boundary are
              // exactly the ones the single-GPU kernel rolls back.
              const uint32_t applied = std::min(count, du - k);
              du -= applied;
              intra_applied += applied;
            }
          }
          dev.intra_updates.clear();
        }
      }
      if (intra_entries > 0) {
        clock.AddOverheadNs(clock.cost().kernel_launch_ns +
                            static_cast<double>(intra_entries) * 8.0);
      }

      // --- Master, phase 2: drain outboxes into the network (per-link
      // aggregation across a node's devices happens here) and flush — one
      // aggregated message per busy link per sub-round. ---
      for (uint32_t node_idx = 0; node_idx < num_nodes; ++node_idx) {
        for (NodeDevice& dev : nodes[node_idx].devices) {
          for (auto& [dst, deltas] : dev.outbox) {
            for (const auto& [u, count] : deltas) {
              network.Buffer(node_idx, dst, u, count);
            }
          }
          dev.outbox.clear();
        }
      }
      const double exchange_start_ns = now_ns();
      const double comm_ns = network.Flush(&inboxes);
      uint64_t border_applied = 0;
      uint64_t border_entries = 0;
      for (auto& inbox : inboxes) {
        border_entries += inbox.size();
        for (const auto& [u, count] : inbox) {
          uint32_t& du = deg_of(u);
          if (du > k) {
            const uint32_t applied = std::min(count, du - k);
            du -= applied;
            border_applied += applied;
          }
        }
        inbox.clear();
      }
      if (border_entries > 0) {
        // Deserialize-and-apply at the receiving masters.
        clock.AddOverheadNs(clock.cost().kernel_launch_ns +
                            static_cast<double>(border_entries) * 8.0);
      }
      if (comm_ns > 0.0) {
        if (tracing) {
          trace.AddComplete(
              "border_exchange", kTraceCatKernel, 0, kTraceTidKernels,
              exchange_start_ns, comm_ns,
              {{"entries",
                StrFormat("%llu",
                          static_cast<unsigned long long>(border_entries))},
               {"applied",
                StrFormat("%llu",
                          static_cast<unsigned long long>(border_applied))},
               {"overlap", options.overlap ? "1" : "0"}});
        }
        if (options.overlap) {
          pending_comm_ns += comm_ns;
        } else {
          clock.AddOverheadNs(comm_ns);
        }
      }

      removed.fetch_add(removed_this_subround.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      if (removed_this_subround.load(std::memory_order_relaxed) == 0 &&
          intra_applied == 0 && border_applied == 0) {
        break;  // fixpoint for this k
      }
    }
    // Nothing left to hide the tail exchange behind: charge it at the
    // round boundary (the barrier every node waits on anyway).
    drain_pending_comm();

    if (resilient) {
      KCORE_RETURN_IF_ERROR(gather_deg(post_deg));
      WallTimer validate;
      std::string why;
      const bool valid =
          ValidatePeelRound(graph, ckpt.deg, post_deg, k,
                            removed.load(std::memory_order_relaxed), &why);
      result.metrics.recovery_ms += validate.ElapsedMillis();
      if (!valid) return Status::Corruption(why);
    }
    return Status::OK();
  };

  // Repartition away any dead nodes, then roll every survivor back to the
  // checkpoint; a death during the restore loops back. Each iteration
  // shrinks the cluster, so this terminates.
  const auto recover_cluster = [&]() -> Status {
    while (true) {
      KCORE_RETURN_IF_ERROR(handle_deaths());
      Status restored = rollback_alive();
      if (restored.ok()) return Status::OK();
      if (!restored.IsDeviceLost()) return restored;
    }
  };

  uint32_t level_retries = 0;
  while (removed.load(std::memory_order_relaxed) < n) {
    // Round-boundary lifecycle check: between k-levels every node is
    // quiescent, so stopping here releases all partitions within one round.
    if (options.cancel != nullptr) {
      if (Status live = options.cancel->Check("cluster round boundary");
          !live.ok()) {
        if (tracing) {
          trace.AddInstant(
              StrFormat("%s k=%u",
                        live.IsCancelled() ? "cancelled" : "deadline_exceeded",
                        k),
              kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
          flush_trace();
        }
        return live;
      }
    }
    const double round_start_ns = now_ns();
    Status round = run_round();
    if (tracing) {
      trace.AddComplete(StrFormat("round k=%u", k), kTraceCatRange, 0,
                        kTraceTidRanges, round_start_ns,
                        now_ns() - round_start_ns);
    }
    if (round.ok()) {
      if (resilient) {
        std::swap(ckpt.deg, post_deg);
        std::copy(claimed.begin(), claimed.end(), ckpt.claimed.begin());
        ckpt.removed = removed.load(std::memory_order_relaxed);
        ++result.metrics.checkpoints_taken;
        if (tracing) {
          trace.AddInstant(StrFormat("checkpoint k=%u", k), kTraceCatRecovery,
                           0, kTraceTidRanges, now_ns());
        }
      }
      ++k;
      ++result.metrics.rounds;
      level_retries = 0;
      if (k > k_limit) {
        return Status::Internal("cluster peeling failed to converge");
      }
      continue;
    }
    if (!resilient) return round;

    Status cause = round;
    pending_comm_ns = 0.0;  // the interrupted round's exchange is void
    const bool death_cause = cause.IsDeviceLost();
    if (death_cause || level_retries < options.resilience.max_level_retries) {
      WallTimer recovery;
      if (!death_cause) ++level_retries;
      ++result.metrics.levels_reexecuted;
      Status recovered = recover_cluster();
      result.metrics.recovery_ms += recovery.ElapsedMillis();
      if (recovered.ok()) continue;
      cause = recovered;
    }
    if (!options.resilience.cpu_fallback) return cause;
    return cpu_finish(k);
  }

  // Gather core numbers. In resilient mode every round was validated, so
  // the checkpoint IS the final state.
  if (resilient) {
    result.core = std::move(ckpt.deg);
  } else {
    result.core.assign(n, 0);
    for (uint32_t node_idx = 0; node_idx < num_nodes; ++node_idx) {
      const std::vector<VertexId>& owned = partition.nodes[node_idx].owned;
      for (NodeDevice& dev : nodes[node_idx].devices) {
        for (size_t slot = dev.slice_begin; slot < dev.slice_end; ++slot) {
          result.core[owned[slot]] = dev.d_deg.data()[slot - dev.slice_begin];
        }
      }
    }
  }
  uint64_t max_peak = 0;
  for (Node& node : nodes) {
    for (NodeDevice& dev : node.devices) {
      max_peak = std::max(max_peak, dev.device->peak_bytes());
      // Host-pointer peeling: simcheck observes allocation lifetimes and
      // host copies — a leak or an uninitialized CopyToHost fails the run.
      if (node.alive) {
        KCORE_RETURN_IF_ERROR(dev.device->CheckStatus());
      }
    }
  }
  result.metrics.peak_device_bytes = max_peak;
  result.metrics.comm_ms = network.stats().comm_ns / 1e6;
  result.metrics.comm_bytes = network.stats().bytes_on_wire;
  result.metrics.comm_messages = network.stats().messages;
  finish_loop_imbalance();
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  flush_trace();
  return result;
}

}  // namespace kcore
