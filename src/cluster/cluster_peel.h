#ifndef KCORE_CLUSTER_CLUSTER_PEEL_H_
#define KCORE_CLUSTER_CLUSTER_PEEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "cluster/network.h"
#include "cluster/partition.h"
#include "core/gpu_peel_options.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"
#include "perf/trace.h"

namespace kcore {

/// Options for the simulated multi-node engine (DESIGN.md §14): N nodes ×
/// M devices peel a partitioned graph; degree decrements that cross a node
/// border are buffered, aggregated per link, and exchanged through the
/// modeled network between sub-rounds. The protocol is the multi-GPU
/// fixpoint lifted one level: round k iterates sub-rounds until no node
/// removes a vertex and no border delta lands.
struct ClusterOptions {
  /// Cluster shape. Vertices are partitioned among nodes; each node splits
  /// its share contiguously among its devices.
  uint32_t num_nodes = 2;
  uint32_t devices_per_node = 1;

  /// How the vertex set is divided among nodes (cluster/partition.h).
  PartitionStrategy partition = PartitionStrategy::kDegreeBalanced;

  /// Interconnect cost model (cluster/network.h). Only moves the modeled
  /// clock; coreness is bit-identical under any setting.
  NetworkOptions network;

  /// Comm/compute overlap: the exchange of sub-round s is charged against
  /// the compute of sub-round s+1 (max instead of sum) — modeling nodes
  /// that peel their interior while border deltas are in flight, since an
  /// incoming delta only touches border masters, which the next sub-round's
  /// scan is the first to re-read. Host execution order is unchanged, so
  /// results are bit-identical with overlap on or off; only modeled_ms and
  /// the comm spans move.
  bool overlap = true;

  /// Per-device configuration, applied to every device of every node.
  sim::DeviceOptions node_device;
  /// Per-node fault plans (cusim/fault_injection.h grammar): entry i
  /// overrides node_device.fault_spec for every device of node i. Shorter
  /// vectors leave later nodes on node_device's spec.
  std::vector<std::string> node_fault_specs;
  /// Recovery policy (inert without a fault plan). A node whose device is
  /// lost has its whole share repartitioned onto the lightest survivor and
  /// the interrupted round re-executed from the checkpoint; with no
  /// survivors the remaining rounds run on CPU PKC (Metrics.degraded).
  ResilienceOptions resilience;

  /// Request lifecycle: polled at round boundaries (the cluster barrier).
  const CancelContext* cancel = nullptr;

  /// simprof output: master pid 0 (rounds, border-exchange comm spans,
  /// recovery markers); device d of node n gets pid 1 + n*M + d
  /// ("node<n>dev<d>") with per-sub-round compute spans on the node's
  /// first device plus the devices' own alloc/copy events.
  Trace* trace = nullptr;

  /// Thread pool running the node lanes; nullptr = DefaultThreadPool().
  /// A 1-thread pool makes the whole run single-threaded (determinism
  /// tests). Not owned.
  ThreadPool* pool = nullptr;
};

/// Multi-node peeling. Returns the usual DecomposeResult where
///  - metrics.rounds        = peeling rounds (k_max + 1),
///  - metrics.iterations    = total sub-rounds (border exchanges),
///  - metrics.comm_ms/comm_bytes/comm_messages = network totals,
///  - metrics.peak_device_bytes = max over all devices of the cluster.
[[nodiscard]] StatusOr<DecomposeResult> RunClusterPeel(
    const CsrGraph& graph, const ClusterOptions& options = {});

}  // namespace kcore

#endif  // KCORE_CLUSTER_CLUSTER_PEEL_H_
