#ifndef KCORE_CLUSTER_PARTITION_H_
#define KCORE_CLUSTER_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/csr_graph.h"

namespace kcore {

/// How the vertex set is divided among cluster nodes (DESIGN.md §14). Every
/// strategy produces a disjoint cover of V; they differ in what they
/// balance and how many edges they cut.
enum class PartitionStrategy {
  /// Even vertex-count split into contiguous ID ranges — the multi-GPU
  /// sharding applied across nodes. Cheapest to build, balances vertex
  /// count only; on skewed graphs one node can own most of the edge mass.
  kContiguous,
  /// Contiguous ID ranges with boundaries placed on the degree prefix sum,
  /// so every node's directed edge mass is within one max-degree of the
  /// even share. Balances compute; ignores the cut.
  kDegreeBalanced,
  /// Greedy streaming edge-cut (linear deterministic greedy): vertices are
  /// placed, hubs first, on the node holding most of their already-placed
  /// neighbors, discounted by a load penalty and hard-capped at
  /// kEdgeCutCapacityFactor of the even edge-mass share. Minimizes border
  /// traffic at a small balance cost.
  kEdgeCut,
};

/// Short name used by CLI flags, stats output and bench labels
/// ("contiguous", "degree", "edgecut").
const char* PartitionStrategyName(PartitionStrategy strategy);

/// Parses a CLI token; returns false on an unknown token, leaving *out
/// untouched.
bool ParsePartitionStrategy(const std::string& token, PartitionStrategy* out);

/// All strategies in declaration order (test/bench sweeps).
const std::vector<PartitionStrategy>& AllPartitionStrategies();

/// Edge-mass load cap of kEdgeCut, as a multiple of the even share
/// (ceil(total_mass / num_nodes)). The greedy placement never exceeds
/// cap = factor * share + max_degree (the last term because one vertex's
/// whole adjacency lands on one node).
inline constexpr double kEdgeCutCapacityFactor = 1.15;

/// One node's share of the partition.
struct NodePartition {
  /// Vertices mastered by this node, ascending. Disjoint across nodes;
  /// the union over nodes is exactly V.
  std::vector<VertexId> owned;
  /// Foreign vertices adjacent to an owned vertex, ascending — the proxies
  /// this node holds read-only copies of. Every mirror's master is another
  /// node (DESIGN.md §14 "mirror/master protocol").
  std::vector<VertexId> mirrors;
  /// Sum of Degree(v) over owned vertices (directed edge mass — the node's
  /// peeling work).
  uint64_t edge_mass = 0;
  /// Directed edges from an owned vertex to a foreign-owned endpoint (the
  /// node's outgoing border traffic ceiling).
  uint64_t cut_edges = 0;
};

/// A full cluster partition: owner map plus per-node shares.
struct ClusterPartition {
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  uint32_t num_nodes = 0;
  /// owner[v] = index of the node mastering v. Size V.
  std::vector<uint32_t> owner;
  std::vector<NodePartition> nodes;
  /// Sum of nodes[i].cut_edges — total directed border edges.
  uint64_t total_cut_edges = 0;

  /// max node edge mass / even share (1.0 = perfectly balanced). 0 when the
  /// graph has no edges.
  double BalanceRatio() const;
};

/// Partitions `graph` among `num_nodes` nodes. Deterministic per
/// (graph, strategy, num_nodes); nodes may come out empty when
/// num_nodes > V. InvalidArgument when num_nodes == 0.
StatusOr<ClusterPartition> BuildPartition(const CsrGraph& graph,
                                          PartitionStrategy strategy,
                                          uint32_t num_nodes);

/// Reassigns every vertex owned by a node marked dead to the surviving node
/// with the least edge mass (greedy, whole share at a time — the cluster
/// analogue of the multi-GPU adjacent-range merge), then rebuilds owned /
/// mirror / mass bookkeeping. FailedPrecondition when no node survives or
/// `dead` is mis-sized.
Status RepartitionOntoSurvivors(const CsrGraph& graph,
                                const std::vector<uint8_t>& dead,
                                ClusterPartition* partition);

/// Structural invariants every strategy must uphold (the partition-invariant
/// test suite calls this, and ClusterPeel asserts it once per build):
/// owner/owned agree and cover V disjointly, mirrors are exactly the foreign
/// adjacent vertices, per-node mass/cut bookkeeping adds up. Returns false
/// with a diagnostic in *why.
bool ValidatePartition(const CsrGraph& graph,
                       const ClusterPartition& partition, std::string* why);

}  // namespace kcore

#endif  // KCORE_CLUSTER_PARTITION_H_
