#include "cluster/network.h"

#include <algorithm>

namespace kcore {

ClusterNetwork::ClusterNetwork(uint32_t num_nodes,
                               const NetworkOptions& options)
    : num_nodes_(num_nodes),
      options_(options),
      links_(static_cast<size_t>(num_nodes) * num_nodes),
      link_flushes_(static_cast<size_t>(num_nodes) * num_nodes, 0) {}

void ClusterNetwork::Buffer(uint32_t src, uint32_t dst, VertexId v,
                            uint32_t count) {
  links_[LinkIndex(src, dst)][v] += count;
}

double ClusterNetwork::Flush(
    std::vector<std::unordered_map<VertexId, uint32_t>>* inboxes) {
  // bytes/ns at 1 GB/s == 1 byte/ns.
  const double bytes_per_ns = options_.link_bandwidth_gbps;
  double max_send_ns = 0.0;
  bool any = false;
  for (uint32_t src = 0; src < num_nodes_; ++src) {
    double send_ns = 0.0;
    for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
      auto& link = links_[LinkIndex(src, dst)];
      if (link.empty()) continue;
      any = true;
      const uint64_t entries = link.size();
      const uint64_t bytes = MessageBytes(entries);
      send_ns += bytes_per_ns > 0.0
                     ? static_cast<double>(bytes) / bytes_per_ns
                     : 0.0;
      ++link_flushes_[LinkIndex(src, dst)];
      ++stats_.messages;
      stats_.entries += entries;
      stats_.bytes_on_wire += bytes;
      auto& inbox = (*inboxes)[dst];
      for (const auto& [v, count] : link) inbox[v] += count;
      link.clear();
    }
    max_send_ns = std::max(max_send_ns, send_ns);
  }
  if (!any) return 0.0;
  ++stats_.flushes;
  const double exchange_ns = max_send_ns + options_.link_latency_us * 1000.0;
  stats_.comm_ns += exchange_ns;
  return exchange_ns;
}

uint64_t ClusterNetwork::PendingEntries() const {
  uint64_t pending = 0;
  for (const auto& link : links_) pending += link.size();
  return pending;
}

uint64_t ClusterNetwork::LinkFlushCount(uint32_t src, uint32_t dst) const {
  return link_flushes_[LinkIndex(src, dst)];
}

}  // namespace kcore
