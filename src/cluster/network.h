#ifndef KCORE_CLUSTER_NETWORK_H_
#define KCORE_CLUSTER_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// The modeled interconnect between cluster nodes (DESIGN.md §14 "network
/// cost model"). Pure model: latency and bandwidth only move the modeled
/// clock; delivery itself is immediate and loss-free, so results never
/// depend on these knobs.
struct NetworkOptions {
  /// Per-message wire latency in modeled microseconds (one charge per
  /// flushed link message — aggregation means one message per link per
  /// flush, which is exactly what buys the batching win).
  double link_latency_us = 5.0;
  /// Per-link bandwidth in modeled GB/s (1 GB/s = 1 byte/ns). A node's
  /// outgoing messages serialize on its NIC; receives are parallel.
  double link_bandwidth_gbps = 10.0;
  /// Serialized size of one aggregated delta entry: (vertex id, decrement
  /// count) = 4 + 4 bytes.
  uint32_t bytes_per_entry = 8;
  /// Fixed framing overhead per link message (headers, routing).
  uint32_t message_header_bytes = 64;
};

/// Cumulative traffic accounting, exposed through Metrics and the cluster
/// bench's bytes-on-wire column.
struct NetworkStats {
  uint64_t bytes_on_wire = 0;  ///< Serialized bytes of every flushed message.
  uint64_t messages = 0;       ///< Link messages flushed (1 per busy link).
  uint64_t entries = 0;        ///< Aggregated (vertex, count) entries sent.
  uint64_t flushes = 0;        ///< Flush calls that moved any traffic.
  double comm_ns = 0.0;        ///< Total modeled exchange time.
};

/// Buffered, aggregating delta exchange between nodes. Producers buffer
/// per-vertex decrement counts against a destination node; a Flush drains
/// every busy link as ONE aggregated message, charges the cost model, and
/// delivers the deltas to per-destination inboxes. The aggregation is the
/// point: a sub-round's many border decrements to the same master collapse
/// into one entry, and all entries for one link into one message.
class ClusterNetwork {
 public:
  ClusterNetwork(uint32_t num_nodes, const NetworkOptions& options);

  uint32_t num_nodes() const { return num_nodes_; }

  /// Buffers `count` decrements for vertex `v` on the src -> dst link.
  /// Same-link entries for the same vertex aggregate in place. NOT
  /// thread-safe — drain per-producer outboxes into it from one thread.
  void Buffer(uint32_t src, uint32_t dst, VertexId v, uint32_t count);

  /// Drains every busy link into inboxes[dst] (aggregated counts merged by
  /// +=), charges the cost model, and returns the modeled exchange time in
  /// ns: max over nodes of the serialized send time of that node's outgoing
  /// messages, plus one link latency (all messages are in flight together;
  /// the slowest sender gates the barrier). A flush with nothing pending
  /// costs 0 and does not count as a flush. `inboxes` must hold num_nodes
  /// maps.
  double Flush(std::vector<std::unordered_map<VertexId, uint32_t>>* inboxes);

  /// Buffered entries not yet flushed (test hook).
  uint64_t PendingEntries() const;

  /// How many flushed messages the src -> dst link has carried — the test
  /// hook behind "aggregation flushes exactly once per round per link".
  uint64_t LinkFlushCount(uint32_t src, uint32_t dst) const;

  const NetworkStats& stats() const { return stats_; }
  const NetworkOptions& options() const { return options_; }

  /// Serialized size of one link message carrying `entries` deltas.
  uint64_t MessageBytes(uint64_t entries) const {
    return options_.message_header_bytes +
           entries * static_cast<uint64_t>(options_.bytes_per_entry);
  }

 private:
  size_t LinkIndex(uint32_t src, uint32_t dst) const {
    return static_cast<size_t>(src) * num_nodes_ + dst;
  }

  uint32_t num_nodes_;
  NetworkOptions options_;
  /// links_[src * N + dst]: pending aggregated deltas for that link.
  std::vector<std::unordered_map<VertexId, uint32_t>> links_;
  std::vector<uint64_t> link_flushes_;
  NetworkStats stats_;
};

}  // namespace kcore

#endif  // KCORE_CLUSTER_NETWORK_H_
