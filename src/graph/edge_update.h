#ifndef KCORE_GRAPH_EDGE_UPDATE_H_
#define KCORE_GRAPH_EDGE_UPDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/csr_graph.h"

namespace kcore {

/// One structural mutation of an undirected simple graph. Updates are
/// interpreted *sequentially*: a batch may insert an edge and remove it
/// again, and validity (edge present / absent) is judged against the graph
/// state produced by all preceding updates in the same batch.
struct EdgeUpdate {
  enum class Kind : uint8_t {
    kInsert = 0,
    kRemove = 1,
  };

  Kind kind = Kind::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  static EdgeUpdate Insert(VertexId u, VertexId v) {
    return {Kind::kInsert, u, v};
  }
  static EdgeUpdate Remove(VertexId u, VertexId v) {
    return {Kind::kRemove, u, v};
  }

  bool operator==(const EdgeUpdate&) const = default;
};

/// A window of updates applied as one maintenance batch.
using UpdateBatch = std::vector<EdgeUpdate>;

/// Loads an update stream from a text file. Format, one update per line:
///
///   + u v    insert undirected edge {u, v}
///   - u v    remove undirected edge {u, v}
///
/// Blank lines and lines starting with '#' or '%' are comments. Endpoints
/// are base-10 vertex ids; anything after the two endpoints is rejected.
StatusOr<UpdateBatch> LoadUpdateStreamText(const std::string& path);

/// Serializes `updates` in the LoadUpdateStreamText format.
Status SaveUpdateStreamText(const UpdateBatch& updates,
                            const std::string& path);

}  // namespace kcore

#endif  // KCORE_GRAPH_EDGE_UPDATE_H_
