#include "graph/subgraph.h"

#include <limits>

#include "common/check.h"

namespace kcore {

InducedSubgraph ExtractInducedSubgraph(const CsrGraph& graph,
                                       const std::vector<bool>& keep) {
  const VertexId n = graph.NumVertices();
  KCORE_CHECK_EQ(keep.size(), static_cast<size_t>(n));

  constexpr VertexId kAbsent = std::numeric_limits<VertexId>::max();
  std::vector<VertexId> dense(n, kAbsent);
  InducedSubgraph out;
  for (VertexId v = 0; v < n; ++v) {
    if (keep[v]) {
      dense[v] = static_cast<VertexId>(out.parent_ids.size());
      out.parent_ids.push_back(v);
    }
  }

  const auto sub_n = static_cast<VertexId>(out.parent_ids.size());
  std::vector<EdgeIndex> offsets(static_cast<size_t>(sub_n) + 1, 0);
  for (VertexId sub_v = 0; sub_v < sub_n; ++sub_v) {
    for (VertexId u : graph.Neighbors(out.parent_ids[sub_v])) {
      if (dense[u] != kAbsent) ++offsets[sub_v + 1];
    }
  }
  for (VertexId v = 0; v < sub_n; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> neighbors(offsets[sub_n]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId sub_v = 0; sub_v < sub_n; ++sub_v) {
    for (VertexId u : graph.Neighbors(out.parent_ids[sub_v])) {
      if (dense[u] != kAbsent) neighbors[cursor[sub_v]++] = dense[u];
    }
  }
  out.graph = CsrGraph(std::move(offsets), std::move(neighbors));
  return out;
}

}  // namespace kcore
