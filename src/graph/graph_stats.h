#ifndef KCORE_GRAPH_GRAPH_STATS_H_
#define KCORE_GRAPH_GRAPH_STATS_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace kcore {

/// The per-dataset columns of the paper's Table I.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;   ///< Undirected edge count (|E| in Table I).
  double avg_degree = 0.0;  ///< d_avg.
  double degree_stddev = 0.0;
  uint32_t max_degree = 0;  ///< d_max.
};

/// Computes the Table I statistics for `graph` (one linear pass).
GraphStats ComputeGraphStats(const CsrGraph& graph);

}  // namespace kcore

#endif  // KCORE_GRAPH_GRAPH_STATS_H_
