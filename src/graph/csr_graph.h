#ifndef KCORE_GRAPH_CSR_GRAPH_H_
#define KCORE_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace kcore {

/// Densely-indexed vertex identifier. The paper assumes dense IDs and
/// recodes sparse ones as preprocessing (§IV "Graph Organization in GPU").
using VertexId = uint32_t;

/// Index into the concatenated adjacency array; 64-bit so graphs with more
/// than 4B directed edge slots are representable.
using EdgeIndex = uint64_t;

/// An undirected graph in compressed-sparse-row form, stored exactly as the
/// paper lays it out in device memory (§IV):
///   - `neighbors`: concatenation of all adjacency lists,
///   - `offsets`:   offsets[i] = start of vertex i's list (size V+1),
///   - degree(i) =  offsets[i+1] - offsets[i].
/// Both directions of every undirected edge are stored, so
/// `NumDirectedEdges() == 2 * NumUndirectedEdges()` for simple graphs.
class CsrGraph {
 public:
  /// Constructs an empty graph (0 vertices).
  CsrGraph() : offsets_(1, 0) {}

  /// Constructs from prebuilt arrays. `offsets` must have size V+1, start at
  /// 0, be non-decreasing, and end at `neighbors.size()`; all neighbor IDs
  /// must be < V. Checked (fatal on violation — use Validate() for untrusted
  /// input).
  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
    KCORE_CHECK_GE(offsets_.size(), 1u);
    KCORE_CHECK_EQ(offsets_.front(), 0u);
    KCORE_CHECK_EQ(offsets_.back(), neighbors_.size());
  }

  CsrGraph(const CsrGraph&) = default;
  CsrGraph& operator=(const CsrGraph&) = default;
  CsrGraph(CsrGraph&&) = default;
  CsrGraph& operator=(CsrGraph&&) = default;

  /// Number of vertices V.
  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of directed adjacency slots (2x undirected edge count).
  EdgeIndex NumDirectedEdges() const { return neighbors_.size(); }

  /// Number of undirected edges, assuming both directions are stored.
  EdgeIndex NumUndirectedEdges() const { return neighbors_.size() / 2; }

  /// Degree of vertex `v`.
  uint32_t Degree(VertexId v) const {
    KCORE_DCHECK(v < NumVertices());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Adjacency list of `v` as a contiguous view (coalesced-access layout).
  std::span<const VertexId> Neighbors(VertexId v) const {
    KCORE_DCHECK(v < NumVertices());
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// Raw arrays, used by device-side code to mirror the graph.
  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& neighbors() const { return neighbors_; }

  /// Degrees of all vertices as a fresh array (the mutable `deg[.]` copy the
  /// algorithms work on).
  std::vector<uint32_t> DegreeArray() const;

  /// Largest vertex degree (0 for an empty graph).
  uint32_t MaxDegree() const;

  /// Deep structural validation for graphs from untrusted sources: offsets
  /// monotone, neighbor IDs in range, no self-loops, adjacency symmetric
  /// (u in N(v) iff v in N(u)), and lists free of duplicates.
  [[nodiscard]] Status Validate() const;

  /// Bytes used by the two arrays (what a device copy would occupy).
  uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(EdgeIndex) +
           neighbors_.size() * sizeof(VertexId);
  }

  bool operator==(const CsrGraph& other) const {
    return offsets_ == other.offsets_ && neighbors_ == other.neighbors_;
  }

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> neighbors_;
};

}  // namespace kcore

#endif  // KCORE_GRAPH_CSR_GRAPH_H_
