#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>

namespace kcore {

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumUndirectedEdges();
  if (stats.num_vertices == 0) return stats;

  double sum = 0.0;
  double sum_sq = 0.0;
  const VertexId n = graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const double d = graph.Degree(v);
    sum += d;
    sum_sq += d * d;
    stats.max_degree = std::max(stats.max_degree, graph.Degree(v));
  }
  const double count = static_cast<double>(n);
  stats.avg_degree = sum / count;
  const double variance =
      std::max(0.0, sum_sq / count - stats.avg_degree * stats.avg_degree);
  stats.degree_stddev = std::sqrt(variance);
  return stats;
}

}  // namespace kcore
