#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include "common/strings.h"

namespace kcore {

namespace {

constexpr uint64_t kCsrMagic = 0x4b43524547524148ULL;  // "KCREGRAH"
constexpr uint32_t kCsrVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status WriteAll(std::FILE* f, const void* data, size_t bytes,
                const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t bytes,
               const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

/// A short excerpt of `line` for error messages (whole line if short).
std::string Excerpt(const std::string& line) {
  constexpr size_t kMax = 40;
  if (line.size() <= kMax) return line;
  return line.substr(0, kMax) + "...";
}

bool IsFieldSeparator(char c) {
  return c == ' ' || c == '\t' || c == '\r';
}

/// Parses one nonnegative decimal vertex id starting at line[pos], skipping
/// leading whitespace; advances pos past the token. Unlike sscanf's %llu,
/// this rejects (instead of silently wrapping or truncating) negative ids,
/// non-numeric tokens, and values past uint64 — every way a hand-edited or
/// truncated edge file lies about a vertex.
Status ParseVertexId(const std::string& path, size_t line_no,
                     const std::string& line, const char* what, size_t& pos,
                     uint64_t* out) {
  while (pos < line.size() && IsFieldSeparator(line[pos])) ++pos;
  if (pos >= line.size()) {
    return Status::InvalidArgument(
        StrFormat("%s:%zu: truncated edge line (missing %s): '%s'",
                  path.c_str(), line_no, what, Excerpt(line).c_str()));
  }
  if (line[pos] == '-') {
    return Status::InvalidArgument(
        StrFormat("%s:%zu: negative vertex id for %s: '%s'", path.c_str(),
                  line_no, what, Excerpt(line).c_str()));
  }
  uint64_t value = 0;
  const size_t start = pos;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(line[pos] - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: vertex id overflows 64 bits for %s: '%s'",
                    path.c_str(), line_no, what, Excerpt(line).c_str()));
    }
    value = value * 10 + digit;
    ++pos;
  }
  const bool empty_token = pos == start;
  const bool runs_into_garbage =
      pos < line.size() && !IsFieldSeparator(line[pos]);
  if (empty_token || runs_into_garbage) {
    return Status::InvalidArgument(
        StrFormat("%s:%zu: non-numeric %s token: '%s'", path.c_str(), line_no,
                  what, Excerpt(line).c_str()));
  }
  *out = value;
  return Status::OK();
}

}  // namespace

StatusOr<EdgeList> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  EdgeList edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = 0;
    while (pos < line.size() && IsFieldSeparator(line[pos])) ++pos;
    if (pos >= line.size() || line[pos] == '#' || line[pos] == '%') continue;
    uint64_t u = 0;
    uint64_t v = 0;
    KCORE_RETURN_IF_ERROR(
        ParseVertexId(path, line_no, line, "source", pos, &u));
    KCORE_RETURN_IF_ERROR(
        ParseVertexId(path, line_no, line, "target", pos, &v));
    // Anything after the two endpoints (weights, timestamps) is ignored, as
    // long as it is whitespace-separated — checked by ParseVertexId above.
    edges.push_back({u, v});
  }
  if (in.bad()) {
    return Status::IOError("read error on " + path);
  }
  return edges;
}

Status SaveEdgeListText(const EdgeList& edges, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(file.get(), "# kcoregpu edge list: %zu edges\n", edges.size());
  for (const RawEdge& e : edges) {
    std::fprintf(file.get(), "%llu\t%llu\n",
                 static_cast<unsigned long long>(e.u),
                 static_cast<unsigned long long>(e.v));
  }
  if (std::ferror(file.get()) != 0) {
    return Status::IOError("write error on " + path);
  }
  return Status::OK();
}

Status SaveCsrBinary(const CsrGraph& graph, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const auto& offsets = graph.offsets();
  const auto& neighbors = graph.neighbors();
  const uint64_t header[4] = {kCsrMagic, kCsrVersion, offsets.size(),
                              neighbors.size()};
  KCORE_RETURN_IF_ERROR(WriteAll(file.get(), header, sizeof(header), path));
  KCORE_RETURN_IF_ERROR(WriteAll(file.get(), offsets.data(),
                                 offsets.size() * sizeof(EdgeIndex), path));
  KCORE_RETURN_IF_ERROR(WriteAll(file.get(), neighbors.data(),
                                 neighbors.size() * sizeof(VertexId), path));
  uint64_t checksum = 0xcbf29ce484222325ULL;
  checksum =
      Fnv1a(offsets.data(), offsets.size() * sizeof(EdgeIndex), checksum);
  checksum =
      Fnv1a(neighbors.data(), neighbors.size() * sizeof(VertexId), checksum);
  KCORE_RETURN_IF_ERROR(
      WriteAll(file.get(), &checksum, sizeof(checksum), path));
  if (std::fflush(file.get()) != 0) {
    return Status::IOError("flush failed on " + path);
  }
  return Status::OK();
}

StatusOr<CsrGraph> LoadCsrBinary(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek " + path);
  }
  const long file_size = std::ftell(file.get());
  if (file_size < 0) {
    return Status::IOError("cannot measure " + path);
  }
  std::rewind(file.get());
  uint64_t header[4] = {0, 0, 0, 0};
  KCORE_RETURN_IF_ERROR(ReadAll(file.get(), header, sizeof(header), path));
  if (header[0] != kCsrMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (header[1] != kCsrVersion) {
    return Status::Corruption(StrFormat(
        "%s: unsupported version %llu", path.c_str(),
        static_cast<unsigned long long>(header[1])));
  }
  if (header[2] == 0) {
    return Status::Corruption(path + ": empty offsets array");
  }
  // A corrupt size field must surface as Corruption, not as an uncaught
  // std::length_error (or OOM) from resizing to a garbage element count:
  // bound both counts by what the file could actually hold.
  const auto payload = static_cast<uint64_t>(file_size);
  if (header[2] > payload / sizeof(EdgeIndex) ||
      header[3] > payload / sizeof(VertexId)) {
    return Status::Corruption(path + ": size fields exceed file size");
  }
  std::vector<EdgeIndex> offsets(header[2]);
  std::vector<VertexId> neighbors(header[3]);
  KCORE_RETURN_IF_ERROR(ReadAll(file.get(), offsets.data(),
                                offsets.size() * sizeof(EdgeIndex), path));
  KCORE_RETURN_IF_ERROR(ReadAll(file.get(), neighbors.data(),
                                neighbors.size() * sizeof(VertexId), path));
  uint64_t stored = 0;
  KCORE_RETURN_IF_ERROR(ReadAll(file.get(), &stored, sizeof(stored), path));
  uint64_t checksum = 0xcbf29ce484222325ULL;
  checksum =
      Fnv1a(offsets.data(), offsets.size() * sizeof(EdgeIndex), checksum);
  checksum =
      Fnv1a(neighbors.data(), neighbors.size() * sizeof(VertexId), checksum);
  if (stored != checksum) {
    return Status::Corruption(path + ": checksum mismatch");
  }
  if (offsets.front() != 0 || offsets.back() != neighbors.size()) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i]) {
      return Status::Corruption(path + ": offsets not monotone");
    }
  }
  const auto num_vertices = static_cast<VertexId>(offsets.size() - 1);
  for (VertexId u : neighbors) {
    if (u >= num_vertices) {
      return Status::Corruption(path + ": neighbor ID out of range");
    }
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace kcore
