#include "graph/graph_builder.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/strings.h"

namespace kcore {

namespace {

/// Sorts + uniquifies each adjacency list in place, compacting the CSR
/// arrays. Returns the rebuilt (offsets, neighbors).
void SortAndDedupAdjacency(VertexId num_vertices, bool dedup,
                           std::vector<EdgeIndex>& offsets,
                           std::vector<VertexId>& neighbors) {
  std::vector<EdgeIndex> new_offsets(num_vertices + 1, 0);
  EdgeIndex write = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(begin),
              neighbors.begin() + static_cast<ptrdiff_t>(end));
    new_offsets[v] = write;
    VertexId prev = std::numeric_limits<VertexId>::max();
    for (EdgeIndex i = begin; i < end; ++i) {
      if (dedup && neighbors[i] == prev) continue;
      prev = neighbors[i];
      neighbors[write++] = neighbors[i];
    }
  }
  new_offsets[num_vertices] = write;
  neighbors.resize(write);
  neighbors.shrink_to_fit();
  offsets = std::move(new_offsets);
}

}  // namespace

StatusOr<BuiltGraph> BuildGraph(const EdgeList& edges,
                                const BuildOptions& options) {
  BuiltGraph out;

  // Pass 1: assign dense IDs (or validate density).
  std::unordered_map<uint64_t, VertexId> id_map;
  uint64_t max_raw_id = 0;
  if (options.recode_ids) {
    id_map.reserve(edges.size());
    for (const RawEdge& e : edges) {
      for (uint64_t raw : {e.u, e.v}) {
        if (options.remove_self_loops && e.u == e.v) continue;
        auto [it, inserted] =
            id_map.emplace(raw, static_cast<VertexId>(id_map.size()));
        (void)it;
        if (inserted &&
            id_map.size() > std::numeric_limits<VertexId>::max()) {
          return Status::InvalidArgument("too many distinct vertex IDs");
        }
      }
    }
  } else {
    for (const RawEdge& e : edges) {
      max_raw_id = std::max({max_raw_id, e.u, e.v});
    }
    if (!edges.empty() &&
        max_raw_id >= std::numeric_limits<VertexId>::max()) {
      return Status::InvalidArgument(
          StrFormat("vertex ID %llu exceeds dense range; enable recode_ids",
                    static_cast<unsigned long long>(max_raw_id)));
    }
  }

  const VertexId num_vertices =
      options.recode_ids
          ? static_cast<VertexId>(id_map.size())
          : (edges.empty() ? 0 : static_cast<VertexId>(max_raw_id + 1));

  auto dense = [&](uint64_t raw) -> VertexId {
    return options.recode_ids ? id_map.find(raw)->second
                              : static_cast<VertexId>(raw);
  };

  // Pass 2: counting sort into CSR slots.
  std::vector<EdgeIndex> offsets(static_cast<size_t>(num_vertices) + 1, 0);
  for (const RawEdge& e : edges) {
    if (options.remove_self_loops && e.u == e.v) continue;
    const VertexId u = dense(e.u);
    const VertexId v = dense(e.v);
    ++offsets[u + 1];
    if (options.make_undirected) ++offsets[v + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> neighbors(offsets[num_vertices]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const RawEdge& e : edges) {
    if (options.remove_self_loops && e.u == e.v) continue;
    const VertexId u = dense(e.u);
    const VertexId v = dense(e.v);
    neighbors[cursor[u]++] = v;
    if (options.make_undirected) neighbors[cursor[v]++] = u;
  }

  SortAndDedupAdjacency(num_vertices, options.dedup, offsets, neighbors);

  out.graph = CsrGraph(std::move(offsets), std::move(neighbors));
  if (options.recode_ids) {
    out.original_ids.resize(num_vertices);
    for (const auto& [raw, id] : id_map) out.original_ids[id] = raw;
  }
  return out;
}

CsrGraph BuildUndirectedGraph(const EdgeList& edges) {
  BuildOptions options;
  options.recode_ids = false;
  auto built = BuildGraph(edges, options);
  KCORE_CHECK(built.ok());
  return std::move(built->graph);
}

CsrGraph BuildUndirectedGraphWithVertexCount(const EdgeList& edges,
                                             VertexId num_vertices) {
  // Append a sentinel self-loop on the last vertex so the builder sees the
  // full vertex range, then rely on self-loop removal to drop it.
  EdgeList padded = edges;
  if (num_vertices > 0) {
    padded.push_back({num_vertices - 1, num_vertices - 1});
  }
  BuildOptions options;
  options.recode_ids = false;
  auto built = BuildGraph(padded, options);
  KCORE_CHECK(built.ok());
  KCORE_CHECK(built->graph.NumVertices() <= num_vertices);
  if (built->graph.NumVertices() == num_vertices) {
    return std::move(built->graph);
  }
  // Input had trailing isolated vertices beyond any edge endpoint: rebuild
  // the offsets with the requested vertex count.
  const CsrGraph& g = built->graph;
  std::vector<EdgeIndex> offsets(g.offsets());
  offsets.resize(static_cast<size_t>(num_vertices) + 1, offsets.back());
  return CsrGraph(std::move(offsets),
                  std::vector<VertexId>(g.neighbors()));
}

}  // namespace kcore
