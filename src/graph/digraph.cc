#include "graph/digraph.h"

#include "graph/graph_builder.h"

namespace kcore {

DirectedGraph BuildDirectedGraph(const EdgeList& edges,
                                 VertexId num_vertices) {
  EdgeList forward;
  EdgeList reverse;
  forward.reserve(edges.size());
  reverse.reserve(edges.size());
  for (const RawEdge& e : edges) {
    if (e.u == e.v) continue;
    KCORE_CHECK(e.u < num_vertices && e.v < num_vertices);
    forward.push_back(e);
    reverse.push_back({e.v, e.u});
  }
  BuildOptions options;
  options.make_undirected = false;
  options.recode_ids = false;
  options.remove_self_loops = true;
  options.dedup = true;

  auto build_one = [&](const EdgeList& arcs) {
    // Pad the vertex range with a sentinel self-loop (dropped by the
    // builder) so isolated trailing vertices survive.
    EdgeList padded = arcs;
    if (num_vertices > 0) {
      padded.push_back({num_vertices - 1, num_vertices - 1});
    }
    auto built = BuildGraph(padded, options);
    KCORE_CHECK(built.ok());
    CsrGraph graph = std::move(built->graph);
    if (graph.NumVertices() < num_vertices) {
      std::vector<EdgeIndex> offsets(graph.offsets());
      offsets.resize(static_cast<size_t>(num_vertices) + 1, offsets.back());
      graph = CsrGraph(std::move(offsets),
                       std::vector<VertexId>(graph.neighbors()));
    }
    return graph;
  };

  return DirectedGraph(build_one(forward), build_one(reverse));
}

}  // namespace kcore
