#ifndef KCORE_GRAPH_RENUMBER_H_
#define KCORE_GRAPH_RENUMBER_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// A degree-ordered relabeling of a graph: the preprocessing pass behind
/// GpuPeelOptions::renumber. Vertices are sorted by degree (descending,
/// ties broken by original ID so the pass is deterministic) and the CSR is
/// rebuilt under the new IDs — the same reason PKC and Gunrock sort work
/// items by degree before assigning them to execution units.
struct Renumbering {
  /// The relabeled graph: vertex `perm[v]` of `graph` is vertex `v` of the
  /// original. Adjacency lists are remapped and re-sorted ascending.
  CsrGraph graph;
  /// perm[old_id] = new_id (a bijection on [0, V)).
  std::vector<VertexId> perm;
  /// inverse[new_id] = old_id.
  std::vector<VertexId> inverse;

  /// Maps a per-vertex array computed on the renumbered graph back to
  /// original vertex IDs: result[old] = values[perm[old]].
  template <typename T>
  std::vector<T> ToOriginal(const std::vector<T>& values) const {
    std::vector<T> out(values.size());
    for (VertexId v = 0; v < static_cast<VertexId>(values.size()); ++v) {
      out[v] = values[perm[v]];
    }
    return out;
  }
};

/// Builds the degree-ordered relabeling of `graph` in O(V + E) via a stable
/// counting sort over degrees. Deterministic: equal-degree vertices keep
/// their original relative order.
///
/// `stripe_chunk` selects the ID-space layout of the sorted sequence:
///
///  - 0 (default): contiguous — new ID equals degree rank, so degrees are
///    monotone non-increasing in ID. Gives degree-homogeneous slices to any
///    consumer that partitions the ID space contiguously (e.g. the
///    multi-GPU even-split sharder).
///  - c > 0: block-cyclic — degree ranks are dealt round-robin across the
///    ceil(V/c) chunks of c consecutive IDs, so every chunk holds a
///    stratified sample of the degree distribution (rank r lands in roughly
///    chunk r mod num_chunks). The GPU peeling engine passes its own
///    block_dim here: its scan assigns each c-wide ID window to one block
///    and each block expands the frontier vertices it scanned, so striping
///    spreads the heavy hubs across blocks instead of packing them into one
///    block's window — that is what shrinks Metrics.loop_imbalance on
///    hub-skewed graphs. A contiguous sort does the opposite (all hubs land
///    in block 0's window).
Renumbering DegreeOrderRenumber(const CsrGraph& graph,
                                uint32_t stripe_chunk = 0);

}  // namespace kcore

#endif  // KCORE_GRAPH_RENUMBER_H_
