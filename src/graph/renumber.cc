#include "graph/renumber.h"

#include <algorithm>

namespace kcore {
namespace {

/// rank[r] = old ID of the vertex with degree rank r (descending, ties by
/// original ID), via a stable counting sort over degrees.
std::vector<VertexId> DegreeRanks(const CsrGraph& graph) {
  const VertexId n = graph.NumVertices();
  const uint32_t max_degree = graph.MaxDegree();
  std::vector<VertexId> bucket_start(static_cast<size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++bucket_start[max_degree - graph.Degree(v)];
  }
  VertexId cursor = 0;
  for (size_t b = 0; b < bucket_start.size(); ++b) {
    const VertexId count = bucket_start[b];
    bucket_start[b] = cursor;
    cursor += count;
  }
  std::vector<VertexId> rank(n);
  for (VertexId v = 0; v < n; ++v) {
    rank[bucket_start[max_degree - graph.Degree(v)]++] = v;
  }
  return rank;
}

}  // namespace

Renumbering DegreeOrderRenumber(const CsrGraph& graph,
                                uint32_t stripe_chunk) {
  const VertexId n = graph.NumVertices();
  Renumbering out;
  out.perm.resize(n);
  out.inverse.resize(n);

  const std::vector<VertexId> rank = DegreeRanks(graph);
  if (stripe_chunk == 0 || n <= stripe_chunk) {
    // Contiguous: new ID = degree rank.
    for (VertexId r = 0; r < n; ++r) {
      out.perm[rank[r]] = r;
      out.inverse[r] = rank[r];
    }
  } else {
    // Block-cyclic: deal ranks round-robin across the stripe_chunk-wide
    // chunks of ID space, skipping chunks that are already full (only the
    // last, partial chunk ever fills early). Every ID in [0, n) is used
    // exactly once because the chunk capacities sum to n.
    const uint64_t chunks =
        (static_cast<uint64_t>(n) + stripe_chunk - 1) / stripe_chunk;
    std::vector<VertexId> fill(chunks, 0);
    const auto capacity = [&](uint64_t c) -> VertexId {
      const uint64_t lo = c * stripe_chunk;
      return static_cast<VertexId>(std::min<uint64_t>(stripe_chunk, n - lo));
    };
    uint64_t c = 0;
    for (VertexId r = 0; r < n; ++r) {
      while (fill[c] == capacity(c)) c = (c + 1) % chunks;
      const VertexId new_id =
          static_cast<VertexId>(c * stripe_chunk + fill[c]++);
      out.perm[rank[r]] = new_id;
      out.inverse[new_id] = rank[r];
      c = (c + 1) % chunks;
    }
  }

  // Rebuild the CSR under the new IDs. Degrees are permutation-invariant,
  // so offsets come straight from the permuted degree sequence; each list
  // is remapped and re-sorted so the relabeled graph stays canonical
  // (ascending adjacency, same as BuildGraph output).
  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    offsets[new_id + 1] = offsets[new_id] + graph.Degree(out.inverse[new_id]);
  }
  std::vector<VertexId> neighbors(graph.NumDirectedEdges());
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    EdgeIndex pos = offsets[new_id];
    for (VertexId u : graph.Neighbors(out.inverse[new_id])) {
      neighbors[pos++] = out.perm[u];
    }
    std::sort(neighbors.begin() + offsets[new_id],
              neighbors.begin() + offsets[new_id + 1]);
  }
  out.graph = CsrGraph(std::move(offsets), std::move(neighbors));
  return out;
}

}  // namespace kcore
