#include "graph/edge_update.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "common/strings.h"

namespace kcore {
namespace {

bool IsSep(char c) { return c == ' ' || c == '\t' || c == '\r'; }

// Parses a base-10 vertex id at `*pos`, advancing past it. Mirrors the
// edge-list loader's strictness: the field must be all digits and fit a
// VertexId.
Status ParseVertex(const std::string& path, size_t line_no,
                   const std::string& line, size_t* pos, VertexId* out) {
  while (*pos < line.size() && IsSep(line[*pos])) ++*pos;
  const size_t start = *pos;
  uint64_t value = 0;
  while (*pos < line.size() && std::isdigit(static_cast<unsigned char>(line[*pos]))) {
    value = value * 10 + static_cast<uint64_t>(line[*pos] - '0');
    if (value > std::numeric_limits<VertexId>::max()) {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: vertex id overflows 32 bits: '%s'", path.c_str(), line_no,
          line.c_str()));
    }
    ++*pos;
  }
  if (*pos == start || (*pos < line.size() && !IsSep(line[*pos]))) {
    return Status::InvalidArgument(StrFormat(
        "%s:%zu: expected a vertex id: '%s'", path.c_str(), line_no,
        line.c_str()));
  }
  *out = static_cast<VertexId>(value);
  return Status::OK();
}

}  // namespace

StatusOr<UpdateBatch> LoadUpdateStreamText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  UpdateBatch updates;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = 0;
    while (pos < line.size() && IsSep(line[pos])) ++pos;
    if (pos >= line.size() || line[pos] == '#' || line[pos] == '%') continue;
    EdgeUpdate update;
    if (line[pos] == '+') {
      update.kind = EdgeUpdate::Kind::kInsert;
    } else if (line[pos] == '-') {
      update.kind = EdgeUpdate::Kind::kRemove;
    } else {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: update lines start with '+' or '-': '%s'", path.c_str(),
          line_no, line.c_str()));
    }
    ++pos;
    KCORE_RETURN_IF_ERROR(ParseVertex(path, line_no, line, &pos, &update.u));
    KCORE_RETURN_IF_ERROR(ParseVertex(path, line_no, line, &pos, &update.v));
    while (pos < line.size() && IsSep(line[pos])) ++pos;
    if (pos < line.size()) {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: trailing garbage after endpoints: '%s'", path.c_str(),
          line_no, line.c_str()));
    }
    updates.push_back(update);
  }
  if (in.bad()) {
    return Status::IOError("read error on " + path);
  }
  return updates;
}

Status SaveUpdateStreamText(const UpdateBatch& updates,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << "# kcoregpu update stream: " << updates.size() << " updates\n";
  for (const EdgeUpdate& e : updates) {
    out << (e.kind == EdgeUpdate::Kind::kInsert ? '+' : '-') << ' ' << e.u
        << ' ' << e.v << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IOError("write error on " + path);
  }
  return Status::OK();
}

}  // namespace kcore
