#include "graph/csr_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace kcore {

std::vector<uint32_t> CsrGraph::DegreeArray() const {
  const VertexId n = NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = Degree(v);
  return deg;
}

uint32_t CsrGraph::MaxDegree() const {
  uint32_t max_deg = 0;
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) max_deg = std::max(max_deg, Degree(v));
  return max_deg;
}

Status CsrGraph::Validate() const {
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      return Status::Corruption(
          StrFormat("offsets not monotone at vertex %u", v));
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    VertexId prev = 0;
    bool first = true;
    for (VertexId u : Neighbors(v)) {
      if (u >= n) {
        return Status::Corruption(
            StrFormat("neighbor %u of vertex %u out of range", u, v));
      }
      if (u == v) {
        return Status::Corruption(StrFormat("self-loop at vertex %u", v));
      }
      if (!first && u == prev) {
        return Status::Corruption(
            StrFormat("duplicate neighbor %u at vertex %u", u, v));
      }
      // Sorted adjacency lists make symmetry checkable with binary search.
      if (!first && u < prev) {
        return Status::Corruption(
            StrFormat("adjacency of vertex %u not sorted", v));
      }
      prev = u;
      first = false;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : Neighbors(v)) {
      const auto nu = Neighbors(u);
      if (!std::binary_search(nu.begin(), nu.end(), v)) {
        return Status::Corruption(
            StrFormat("edge (%u,%u) present but (%u,%u) missing", v, u, u, v));
      }
    }
  }
  return Status::OK();
}

}  // namespace kcore
