#ifndef KCORE_GRAPH_GRAPH_BUILDER_H_
#define KCORE_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace kcore {

/// Options controlling EdgeList -> CsrGraph conversion. Defaults implement
/// the paper's preprocessing: directed inputs become undirected, self-loops
/// and parallel edges are dropped, and sparse IDs are densely recoded (§IV,
/// §VI "Some graphs are directed and we make them undirected").
struct BuildOptions {
  /// Store both (u,v) and (v,u) for every input edge.
  bool make_undirected = true;
  /// Drop u==v edges.
  bool remove_self_loops = true;
  /// Collapse parallel edges.
  bool dedup = true;
  /// Remap arbitrary 64-bit IDs onto [0, V). When false, IDs must already be
  /// dense (max ID defines V) or building fails.
  bool recode_ids = true;
};

/// Result of a build: the CSR graph plus (when recoding) the original ID of
/// each dense vertex, so analyses can report external identifiers.
struct BuiltGraph {
  CsrGraph graph;
  /// original_id[dense_id] = input ID; empty when recode_ids was false.
  std::vector<uint64_t> original_ids;
};

/// Converts a raw edge list into a clean CSR graph.
///
/// Fails with InvalidArgument if recoding is disabled and an endpoint exceeds
/// the dense VertexId range. Deterministic: dense IDs are assigned in order
/// of first appearance in `edges`.
[[nodiscard]] StatusOr<BuiltGraph> BuildGraph(const EdgeList& edges,
                                const BuildOptions& options = {});

/// Convenience wrapper for tests and generators whose edges are already
/// dense and in-range: builds with default options and asserts success.
CsrGraph BuildUndirectedGraph(const EdgeList& edges);

/// Builds a CSR graph over exactly `num_vertices` vertices (isolated
/// vertices preserved) from dense, in-range endpoints.
CsrGraph BuildUndirectedGraphWithVertexCount(const EdgeList& edges,
                                             VertexId num_vertices);

}  // namespace kcore

#endif  // KCORE_GRAPH_GRAPH_BUILDER_H_
