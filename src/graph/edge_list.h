#ifndef KCORE_GRAPH_EDGE_LIST_H_
#define KCORE_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <vector>

namespace kcore {

/// One endpoint pair. Raw 64-bit IDs, since external datasets (SNAP, KONECT)
/// use sparse identifiers that are recoded before CSR construction.
struct RawEdge {
  uint64_t u = 0;
  uint64_t v = 0;

  bool operator==(const RawEdge&) const = default;
};

/// An unordered multiset of edges as read from disk or a generator, before
/// cleaning (direction, duplicates, self-loops) happens in GraphBuilder.
using EdgeList = std::vector<RawEdge>;

}  // namespace kcore

#endif  // KCORE_GRAPH_EDGE_LIST_H_
