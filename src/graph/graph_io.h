#ifndef KCORE_GRAPH_GRAPH_IO_H_
#define KCORE_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/statusor.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace kcore {

/// Reads a SNAP-style whitespace-separated edge list. Lines starting with
/// '#' or '%' are comments; each data line is "u v" (extra columns ignored).
[[nodiscard]] StatusOr<EdgeList> LoadEdgeListText(const std::string& path);

/// Writes "u v" lines with a one-line '#' header.
[[nodiscard]] Status SaveEdgeListText(const EdgeList& edges, const std::string& path);

/// Serializes a CSR graph to a binary file: fixed header (magic, version,
/// vertex/edge counts), offsets array, neighbors array, FNV-1a checksum of
/// the payload. Used to cache generated benchmark datasets.
[[nodiscard]] Status SaveCsrBinary(const CsrGraph& graph, const std::string& path);

/// Loads a binary CSR file, verifying magic, version, sizes and checksum.
[[nodiscard]] StatusOr<CsrGraph> LoadCsrBinary(const std::string& path);

}  // namespace kcore

#endif  // KCORE_GRAPH_GRAPH_IO_H_
