#ifndef KCORE_GRAPH_SUBGRAPH_H_
#define KCORE_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// A vertex-induced subgraph plus the mapping from its dense IDs back to the
/// parent graph's IDs.
struct InducedSubgraph {
  CsrGraph graph;
  /// parent_id[sub_id] = vertex ID in the parent graph.
  std::vector<VertexId> parent_ids;
};

/// Extracts the subgraph induced by the vertices with keep[v] == true.
/// Dense sub-IDs follow parent ID order. keep.size() must equal V.
InducedSubgraph ExtractInducedSubgraph(const CsrGraph& graph,
                                       const std::vector<bool>& keep);

}  // namespace kcore

#endif  // KCORE_GRAPH_SUBGRAPH_H_
