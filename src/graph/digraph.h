#ifndef KCORE_GRAPH_DIGRAPH_H_
#define KCORE_GRAPH_DIGRAPH_H_

#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace kcore {

/// A directed graph as a pair of CSR structures (out- and in-adjacency),
/// the representation needed by the directed-core variants (paper §II-C,
/// D-cores [46][47]).
class DirectedGraph {
 public:
  DirectedGraph() = default;
  DirectedGraph(CsrGraph out, CsrGraph in)
      : out_(std::move(out)), in_(std::move(in)) {
    KCORE_CHECK_EQ(out_.NumVertices(), in_.NumVertices());
    KCORE_CHECK_EQ(out_.NumDirectedEdges(), in_.NumDirectedEdges());
  }

  VertexId NumVertices() const { return out_.NumVertices(); }
  EdgeIndex NumEdges() const { return out_.NumDirectedEdges(); }

  uint32_t OutDegree(VertexId v) const { return out_.Degree(v); }
  uint32_t InDegree(VertexId v) const { return in_.Degree(v); }
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return out_.Neighbors(v);
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return in_.Neighbors(v);
  }

  const CsrGraph& out() const { return out_; }
  const CsrGraph& in() const { return in_; }

 private:
  CsrGraph out_;
  CsrGraph in_;
};

/// Builds a directed graph over `num_vertices` dense vertex IDs, dropping
/// self-loops and duplicate arcs. Each RawEdge is the arc u -> v.
DirectedGraph BuildDirectedGraph(const EdgeList& edges,
                                 VertexId num_vertices);

}  // namespace kcore

#endif  // KCORE_GRAPH_DIGRAPH_H_
