#include "systems/gswitch.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "cusim/atomics.h"
#include "cusim/device.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

StatusOr<DecomposeResult> RunGSwitchKCore(const CsrGraph& graph,
                                          uint32_t k_max,
                                          const SystemConfig& config) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const EdgeIndex m = graph.NumDirectedEdges();
  sim::Device device(config.device);
  ModeledClock clock(GpuSystemCostModel());
  DecomposeResult result;

  // Framework runtime context (autotuner state, pattern tables); ~100 MB on
  // the real system, scaled 1/400.
  KCORE_ASSIGN_OR_RETURN(auto d_runtime,
                         device.Alloc<uint8_t>(1200u << 10, "gs_runtime"));
  (void)d_runtime;
  KCORE_ASSIGN_OR_RETURN(
      auto d_offsets,
      device.Alloc<EdgeIndex>(graph.offsets().size(), "gs_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_neighbors,
      device.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "gs_neighbors"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_deg, device.Alloc<uint32_t>(std::max<VertexId>(1, n), "gs_deg"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_alive,
      device.Alloc<uint8_t>(std::max<VertexId>(1, n), "gs_alive"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_front_a,
      device.Alloc<VertexId>(std::max<VertexId>(1, n), "gs_front_a"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_front_b,
      device.Alloc<VertexId>(std::max<VertexId>(1, n), "gs_front_b"));
  // One |E|-scale auxiliary (per-edge message staging), the allocation that
  // eventually OOMs GSWITCH on the two largest Table III graphs.
  KCORE_ASSIGN_OR_RETURN(
      auto d_edge_aux,
      device.Alloc<uint32_t>(std::max<EdgeIndex>(1, m), "gs_edge_aux"));
  (void)d_edge_aux;

  KCORE_RETURN_IF_ERROR(d_offsets.CopyFromHost(graph.offsets()));
  KCORE_RETURN_IF_ERROR(d_neighbors.CopyFromHost(graph.neighbors()));
  {
    const auto deg = graph.DegreeArray();
    KCORE_RETURN_IF_ERROR(d_deg.CopyFromHost(deg));
  }
  std::fill(d_alive.span().begin(), d_alive.span().end(), uint8_t{1});

  const EdgeIndex* offsets = d_offsets.data();
  const VertexId* neighbors = d_neighbors.data();
  uint32_t* deg = d_deg.data();
  uint8_t* alive = d_alive.data();
  VertexId* frontier = d_front_a.data();
  VertexId* frontier_next = d_front_b.data();

  const uint32_t lanes = config.logical_blocks;
  std::vector<PerfCounters> lane_counters(lanes);
  ThreadPool& pool = DefaultThreadPool();
  const uint64_t chunk = (static_cast<uint64_t>(n) + lanes - 1) / lanes;

  auto merge_phase = [&](uint32_t launches) {
    clock.AddParallelPhase(lane_counters);
    for (auto& c : lane_counters) {
      result.metrics.counters += c;
      c = PerfCounters();
    }
    clock.AddOverheadNs(launches * clock.cost().kernel_launch_ns);
    result.metrics.counters.kernel_launches += launches;
  };

  std::atomic<uint64_t> out_size{0};

  // Dense filter: full sweep collecting alive vertices with deg <= k.
  auto dense_filter = [&](uint32_t k, VertexId* out) {
    out_size.store(0, std::memory_order_relaxed);
    pool.RunLanes(lanes, [&](uint32_t lane) {
      PerfCounters& c = lane_counters[lane];
      const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
      const uint64_t end = std::min<uint64_t>(begin + chunk, n);
      for (uint64_t v = begin; v < end; ++v) {
        ++c.vertices_scanned;
        ++c.global_reads;
        ++c.lane_ops;
        if (alive[v] == 0) continue;
        if (sim::GlobalLoad(&deg[v], c) <= k) {
          const uint64_t pos =
              out_size.fetch_add(1, std::memory_order_relaxed);
          ++c.global_atomics;
          out[pos] = static_cast<VertexId>(v);
          ++c.global_writes;
        }
      }
    });
    merge_phase(1);
    return out_size.load(std::memory_order_relaxed);
  };

  // Advance: process `fsize` frontier vertices. In sparse mode, crossings
  // (deg hits k) are pushed directly into `out`; in dense mode the caller
  // re-filters instead.
  auto advance = [&](uint32_t k, uint64_t fsize, bool sparse, VertexId* in,
                     VertexId* out) {
    out_size.store(0, std::memory_order_relaxed);
    std::atomic<uint64_t> next{0};
    pool.RunLanes(lanes, [&](uint32_t lane) {
      PerfCounters& c = lane_counters[lane];
      while (true) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= fsize) break;
        const VertexId v = in[i];
        ++c.global_reads;
        sim::GlobalStore(&alive[v], uint8_t{0}, c);
        sim::GlobalStore(&deg[v], k, c);  // freeze at core number
        for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
          const VertexId u = sim::GlobalLoad(&neighbors[e], c);
          ++c.edges_traversed;
          ++c.lane_ops;
          if (std::atomic_ref<uint8_t>(alive[u]).load(
                  std::memory_order_relaxed) == 0) {
            continue;
          }
          const uint32_t du = sim::GlobalLoad(&deg[u], c);
          if (du > k) {
            const uint32_t old = sim::AtomicSub(&deg[u], 1u, c);
            if (old == k + 1 && sparse) {
              const uint64_t pos =
                  out_size.fetch_add(1, std::memory_order_relaxed);
              ++c.global_atomics;
              out[pos] = u;
              ++c.global_writes;
            } else if (old <= k) {
              sim::AtomicAdd(&deg[u], 1u, c);
            }
          }
        }
      }
    });
    // GSWITCH's pattern-based autotuner fuses advance+filter+emit into one
    // kernel in sparse mode; the dense path keeps a separate emit kernel.
    merge_phase(sparse ? 1 : 2);
    return sparse ? out_size.load(std::memory_order_relaxed) : uint64_t{0};
  };

  const uint64_t sparse_threshold = std::max<uint64_t>(1, n / 64);

  // The paper's GSWITCH port runs a hardcoded number of rounds (= k_max).
  for (uint32_t k = 0; k <= k_max; ++k) {
    uint64_t fsize = dense_filter(k, frontier);
    while (fsize != 0) {
      ++result.metrics.iterations;
      // Autotuner: pattern-based strategy selection per iteration.
      const bool sparse = fsize < sparse_threshold;
      const uint64_t produced =
          advance(k, fsize, sparse, frontier, frontier_next);
      if (sparse) {
        std::swap(frontier, frontier_next);
        fsize = produced;
      } else {
        fsize = dense_filter(k, frontier);
      }
      if (clock.ms() > config.modeled_timeout_ms) {
        return Status::Timeout(
            StrFormat("GSWITCH exceeded modeled budget at k=%u", k));
      }
    }
    ++result.metrics.rounds;
  }

  result.core.assign(n, 0);
  KCORE_RETURN_IF_ERROR(d_deg.CopyToHost(result.core));
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes = device.peak_bytes();
  KCORE_RETURN_IF_ERROR(device.CheckStatus());
  return result;
}

}  // namespace kcore
