#include "systems/gunrock.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "cusim/atomics.h"
#include "cusim/device.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

StatusOr<DecomposeResult> RunGunrockKCore(const CsrGraph& graph,
                                          const SystemConfig& config) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const EdgeIndex m = graph.NumDirectedEdges();
  sim::Device device(config.device);
  ModeledClock clock(GpuSystemCostModel());
  DecomposeResult result;

  // Framework runtime context (operator configs, frontier manager), graph
  // size independent; ~250 MB on the real system (scaled).
  KCORE_ASSIGN_OR_RETURN(auto d_runtime,
                         device.Alloc<uint8_t>(1600u << 10, "gr_runtime"));
  (void)d_runtime;
  // Device state: graph + degrees + alive flags + double-buffered frontiers.
  // Gunrock sizes its frontier/candidate queues for the worst case (|E|):
  // three |E|-scale buffers, the memory profile behind its Table V column.
  KCORE_ASSIGN_OR_RETURN(
      auto d_offsets,
      device.Alloc<EdgeIndex>(graph.offsets().size(), "gr_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_neighbors,
      device.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "gr_neighbors"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_deg, device.Alloc<uint32_t>(std::max<VertexId>(1, n), "gr_deg"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_alive,
      device.Alloc<uint8_t>(std::max<VertexId>(1, n), "gr_alive"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_frontier,
      device.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "gr_frontier"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_candidates,
      device.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "gr_candidates"));
  KCORE_ASSIGN_OR_RETURN(
      auto d_scratch,
      device.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "gr_scratch"));
  (void)d_candidates;
  (void)d_scratch;

  KCORE_RETURN_IF_ERROR(d_offsets.CopyFromHost(graph.offsets()));
  KCORE_RETURN_IF_ERROR(d_neighbors.CopyFromHost(graph.neighbors()));
  {
    const auto deg = graph.DegreeArray();
    KCORE_RETURN_IF_ERROR(d_deg.CopyFromHost(deg));
  }
  std::fill(d_alive.span().begin(), d_alive.span().end(), uint8_t{1});

  const EdgeIndex* offsets = d_offsets.data();
  const VertexId* neighbors = d_neighbors.data();
  uint32_t* deg = d_deg.data();
  uint8_t* alive = d_alive.data();
  VertexId* frontier = d_frontier.data();

  const uint32_t lanes = config.logical_blocks;
  std::vector<PerfCounters> lane_counters(lanes);
  ThreadPool& pool = DefaultThreadPool();
  const uint64_t chunk = (static_cast<uint64_t>(n) + lanes - 1) / lanes;

  auto merge_phase = [&] {
    clock.AddParallelPhase(lane_counters);
    for (auto& c : lane_counters) {
      result.metrics.counters += c;
      c = PerfCounters();
    }
  };

  std::atomic<uint64_t> removed{0};
  std::atomic<uint64_t> frontier_size{0};
  uint32_t k = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;

  while (removed.load(std::memory_order_relaxed) < n) {
    bool round_active = true;
    while (round_active) {
      ++result.metrics.iterations;

      // --- filter: full vertex sweep -> frontier of alive deg<=k. ---
      frontier_size.store(0, std::memory_order_relaxed);
      pool.RunLanes(lanes, [&](uint32_t lane) {
        PerfCounters& c = lane_counters[lane];
        const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
        const uint64_t end = std::min<uint64_t>(begin + chunk, n);
        for (uint64_t v = begin; v < end; ++v) {
          ++c.vertices_scanned;
          ++c.global_reads;
          ++c.lane_ops;
          if (alive[v] == 0) continue;
          if (sim::GlobalLoad(&deg[v], c) <= k) {
            const uint64_t pos =
                frontier_size.fetch_add(1, std::memory_order_relaxed);
            ++c.global_atomics;
            sim::GlobalStore(&frontier[pos], static_cast<VertexId>(v), c);
          }
        }
      });
      merge_phase();
      clock.AddOverheadNs(clock.cost().kernel_launch_ns);
      ++result.metrics.counters.kernel_launches;

      const uint64_t fsize = frontier_size.load(std::memory_order_relaxed);
      if (fsize == 0) {
        round_active = false;
        break;
      }

      // --- advance: expand frontier adjacency, decrement degrees. ---
      std::atomic<uint64_t> next{0};
      pool.RunLanes(lanes, [&](uint32_t lane) {
        PerfCounters& c = lane_counters[lane];
        while (true) {
          const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= fsize) break;
          const VertexId v = sim::GlobalLoad(&frontier[i], c);
          // Atomic stores: other lanes concurrently read these locations.
          sim::GlobalStore(&alive[v], uint8_t{0}, c);
          sim::GlobalStore(&deg[v], k, c);  // freeze at the core number
          for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
            const VertexId u = sim::GlobalLoad(&neighbors[e], c);
            ++c.edges_traversed;
            ++c.lane_ops;
            if (std::atomic_ref<uint8_t>(alive[u]).load(
                    std::memory_order_relaxed) == 0) {
              continue;
            }
            const uint32_t du = sim::GlobalLoad(&deg[u], c);
            if (du > k) {
              const uint32_t old = sim::AtomicSub(&deg[u], 1u, c);
              if (old <= k) sim::AtomicAdd(&deg[u], 1u, c);
            }
          }
        }
      });
      merge_phase();
      // Advance + the frontier-management kernel Gunrock inserts per step.
      clock.AddOverheadNs(2 * clock.cost().kernel_launch_ns);
      result.metrics.counters.kernel_launches += 2;
      removed.fetch_add(fsize, std::memory_order_relaxed);

      if (clock.ms() > config.modeled_timeout_ms) {
        return Status::Timeout(
            StrFormat("Gunrock exceeded modeled budget at k=%u", k));
      }
    }
    ++k;
    ++result.metrics.rounds;
    if (k > k_limit) return Status::Internal("Gunrock k-core diverged");
  }

  result.core.assign(n, 0);
  KCORE_RETURN_IF_ERROR(d_deg.CopyToHost(result.core));
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes = device.peak_bytes();
  KCORE_RETURN_IF_ERROR(device.CheckStatus());
  return result;
}

}  // namespace kcore
