#ifndef KCORE_SYSTEMS_GSWITCH_H_
#define KCORE_SYSTEMS_GSWITCH_H_

#include "common/statusor.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"
#include "systems/medusa.h"  // SystemConfig

namespace kcore {

/// k-core decomposition on a GSWITCH-style autotuned frontier engine
/// (paper §II-B, §V "Peeling Algorithm on Gunrock and GSWITCH").
///
/// UDF decomposition per the paper: "filter" identifies new degree-k
/// vertices, "comp" decrements a degree per received message, "emit"
/// aggregates whether the round's inner loop needs another iteration.
/// The engine's defining feature is per-iteration autotuning: it picks a
/// *sparse* strategy (queue-based advance touching only frontier adjacency)
/// when the frontier is small and a *dense* strategy (full bitmap sweep)
/// when it is large — which is why GSWITCH beats Gunrock's always-dense
/// filter in Table III while staying well behind the tailor-made kernels.
///
/// GSWITCH has no easy outer-loop-of-rounds support, so the caller passes
/// the number of rounds to run (`k_max`), mirroring the paper's hardcoding
/// of the core number per input graph. Passing a too-small k_max leaves
/// high-core vertices unpeeled, exactly as the real system would.
StatusOr<DecomposeResult> RunGSwitchKCore(const CsrGraph& graph,
                                          uint32_t k_max,
                                          const SystemConfig& config = {});

}  // namespace kcore

#endif  // KCORE_SYSTEMS_GSWITCH_H_
