#ifndef KCORE_SYSTEMS_MEDUSA_H_
#define KCORE_SYSTEMS_MEDUSA_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "cusim/atomics.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/cost_model.h"
#include "perf/decompose_result.h"
#include "perf/modeled_clock.h"

namespace kcore {

/// Shared configuration of the re-implemented GPU graph-parallel systems.
struct SystemConfig {
  /// Logical execution units (thread blocks); modeled width per unit comes
  /// from the cost model (1024 threads).
  uint32_t logical_blocks = 108;
  /// Abort with Status::Timeout once modeled time exceeds this budget — how
  /// the benchmark reproduces the paper's "> 1hr" rows.
  double modeled_timeout_ms = std::numeric_limits<double>::infinity();
  /// Simulated device used for memory accounting (OOM rows + Table V).
  sim::DeviceOptions device;
};

/// A Medusa-style (Pregel-like) vertex-centric BSP engine (paper §II-B/§V).
///
/// Programming model: per superstep every vertex runs SendMessage (one value
/// broadcast over all incident edges, written into per-edge message slots),
/// then CombineMessages over the full batch of incoming messages, then
/// UpdateVertex. Messages are materialized per directed edge — the defining
/// memory/work profile of Medusa: every superstep touches all |E| slots,
/// which is why Medusa rows dominate Table III and OOM first in Table V.
///
/// `Program` must provide:
///   uint32_t InitValue(VertexId v, uint32_t degree);
///   uint32_t SendMessage(VertexId v, uint32_t value);
///   uint32_t CombineMessages(VertexId v, uint32_t value,
///                            std::span<const uint32_t> messages);
///   bool UpdateVertex(VertexId v, uint32_t& value, uint32_t combined);
///     (returns true if the vertex votes for another superstep)
template <typename Program>
class MedusaEngine {
 public:
  MedusaEngine(const CsrGraph& graph, const SystemConfig& config)
      : graph_(graph),
        config_(config),
        device_(config.device),
        clock_(GpuSystemCostModel()) {}

  /// Allocates device state (values, per-edge messages, reverse-edge index).
  Status Init();

  /// Runs one BSP superstep; returns the number of vertices voting to
  /// continue, or Timeout once the modeled budget is exhausted.
  StatusOr<uint64_t> RunSuperstep(Program& program);

  /// Current vertex values (device-resident; host-visible in simulation).
  std::span<uint32_t> values() { return values_.span(); }
  sim::Device& device() { return device_; }
  ModeledClock& clock() { return clock_; }
  PerfCounters& counters() { return counters_; }
  uint32_t supersteps() const { return supersteps_; }

  /// Fills the common Metrics fields from the engine's state.
  void FillMetrics(Metrics& metrics) const {
    metrics.modeled_ms = clock_.ms();
    metrics.peak_device_bytes = device_.peak_bytes();
    metrics.counters = counters_;
    metrics.iterations = supersteps_;
  }

 private:
  const CsrGraph& graph_;
  SystemConfig config_;
  sim::Device device_;
  ModeledClock clock_;
  PerfCounters counters_;
  uint32_t supersteps_ = 0;

  sim::DeviceArray<uint8_t> d_runtime_;
  sim::DeviceArray<EdgeIndex> d_offsets_;
  sim::DeviceArray<VertexId> d_neighbors_;
  sim::DeviceArray<uint32_t> values_;
  sim::DeviceArray<uint32_t> messages_;      ///< One slot per directed edge.
  sim::DeviceArray<uint64_t> reverse_edge_;  ///< Slot of (v,u) for slot (u,v).
};

// ---------------------------------------------------------------------------
// Implementation (template definitions).
// ---------------------------------------------------------------------------

template <typename Program>
Status MedusaEngine<Program>::Init() {
  const VertexId n = graph_.NumVertices();
  const EdgeIndex m = graph_.NumDirectedEdges();

  // Framework runtime context (EMV tables, kernel configurations),
  // independent of graph size; ~300 MB on the real system (scaled).
  KCORE_ASSIGN_OR_RETURN(d_runtime_,
                         device_.Alloc<uint8_t>(2000u << 10, "md_runtime"));
  KCORE_ASSIGN_OR_RETURN(
      d_offsets_,
      device_.Alloc<EdgeIndex>(graph_.offsets().size(), "md_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      d_neighbors_,
      device_.Alloc<VertexId>(std::max<EdgeIndex>(1, m), "md_neighbors"));
  KCORE_ASSIGN_OR_RETURN(
      values_,
      device_.Alloc<uint32_t>(std::max<VertexId>(1, n), "md_values"));
  KCORE_ASSIGN_OR_RETURN(
      messages_,
      device_.Alloc<uint32_t>(std::max<EdgeIndex>(1, m), "md_messages"));
  KCORE_ASSIGN_OR_RETURN(
      reverse_edge_,
      device_.Alloc<uint64_t>(std::max<EdgeIndex>(1, m), "md_reverse_edge"));
  KCORE_RETURN_IF_ERROR(d_offsets_.CopyFromHost(graph_.offsets()));
  KCORE_RETURN_IF_ERROR(d_neighbors_.CopyFromHost(graph_.neighbors()));

  // Reverse-edge index: slot i carrying (u,v) maps to the slot of (v,u).
  // Built once on the host (part of Medusa's graph construction).
  std::vector<uint64_t> reverse(std::max<EdgeIndex>(1, m));
  for (VertexId u = 0; u < n; ++u) {
    const auto begin = graph_.offsets()[u];
    const auto nbrs = graph_.Neighbors(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId v = nbrs[j];
      const auto vn = graph_.Neighbors(v);
      const auto it = std::lower_bound(vn.begin(), vn.end(), u);
      KCORE_CHECK(it != vn.end() && *it == u);
      reverse[begin + j] = graph_.offsets()[v] + (it - vn.begin());
    }
  }
  KCORE_RETURN_IF_ERROR(reverse_edge_.CopyFromHost(reverse));
  return Status::OK();
}

template <typename Program>
StatusOr<uint64_t> MedusaEngine<Program>::RunSuperstep(Program& program) {
  const VertexId n = graph_.NumVertices();
  const uint32_t lanes = config_.logical_blocks;
  const EdgeIndex* offsets = d_offsets_.data();
  uint32_t* values = values_.data();
  uint32_t* messages = messages_.data();
  const uint64_t* reverse = reverse_edge_.data();

  std::vector<PerfCounters> lane_counters(lanes);
  ThreadPool& pool = DefaultThreadPool();
  const uint64_t chunk = (static_cast<uint64_t>(n) + lanes - 1) / lanes;

  // Phase 1: SendMessage — every vertex broadcasts one value into the
  // message slot of each incident edge (scattered writes).
  pool.RunLanes(lanes, [&](uint32_t lane) {
    PerfCounters& c = lane_counters[lane];
    const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
    const uint64_t end = std::min<uint64_t>(begin + chunk, n);
    for (uint64_t v = begin; v < end; ++v) {
      ++c.vertices_scanned;
      const uint32_t msg =
          program.SendMessage(static_cast<VertexId>(v), values[v]);
      for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
        sim::GlobalStore(&messages[reverse[i]], msg, c);
        // The reverse-indexed scatter is uncoalesced: each lane's store is
        // its own memory transaction, ~8x the cost of a coalesced write.
        c.global_writes += 7;
        ++c.messages;
        ++c.edges_traversed;
        ++c.lane_ops;
      }
    }
  });
  clock_.AddParallelPhase(lane_counters);
  for (const auto& c : lane_counters) counters_ += c;
  for (auto& c : lane_counters) c = PerfCounters();

  // Phase 2: CombineMessages + UpdateVertex — each vertex folds the batch
  // of messages sitting in its own (contiguous) slots.
  std::atomic<uint64_t> votes{0};
  pool.RunLanes(lanes, [&](uint32_t lane) {
    PerfCounters& c = lane_counters[lane];
    const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
    const uint64_t end = std::min<uint64_t>(begin + chunk, n);
    uint64_t local_votes = 0;
    for (uint64_t v = begin; v < end; ++v) {
      ++c.vertices_scanned;
      const EdgeIndex lo = offsets[v];
      const EdgeIndex hi = offsets[v + 1];
      c.global_reads += hi - lo;
      c.lane_ops += hi - lo;
      const std::span<const uint32_t> incoming(&messages[lo], hi - lo);
      const uint32_t combined = program.CombineMessages(
          static_cast<VertexId>(v), values[v], incoming);
      if (program.UpdateVertex(static_cast<VertexId>(v), values[v],
                               combined)) {
        ++local_votes;
      }
      ++c.global_writes;
    }
    if (local_votes != 0) {
      votes.fetch_add(local_votes, std::memory_order_relaxed);
    }
  });
  clock_.AddParallelPhase(lane_counters);
  for (const auto& c : lane_counters) counters_ += c;

  // Medusa issues separate kernels for send / combine / update plus the
  // aggregate-flag readback.
  clock_.AddOverheadNs(3 * clock_.cost().kernel_launch_ns);
  counters_.kernel_launches += 3;
  ++supersteps_;

  if (clock_.ms() > config_.modeled_timeout_ms) {
    return Status::Timeout(
        StrFormat("Medusa exceeded modeled budget after %u supersteps",
                  supersteps_));
  }
  return votes.load(std::memory_order_relaxed);
}

/// Medusa running the MPM h-index algorithm (paper §V "MPM-Style Algorithm
/// on Medusa"): full-graph supersteps until no estimate changes.
StatusOr<DecomposeResult> RunMedusaMpm(const CsrGraph& graph,
                                       const SystemConfig& config = {});

/// Medusa running the peeling algorithm (paper §V "Peeling Algorithm on
/// Medusa"): an outer loop over k, inner supersteps deleting k-shell
/// vertices and message-counting deleted neighbors.
StatusOr<DecomposeResult> RunMedusaPeel(const CsrGraph& graph,
                                        const SystemConfig& config = {});

}  // namespace kcore

#endif  // KCORE_SYSTEMS_MEDUSA_H_
