#ifndef KCORE_SYSTEMS_GUNROCK_H_
#define KCORE_SYSTEMS_GUNROCK_H_

#include "common/statusor.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"
#include "systems/medusa.h"  // SystemConfig

namespace kcore {

/// k-core decomposition on a Gunrock-style data-centric frontier engine
/// (paper §II-B, §V "Peeling Algorithm on Gunrock").
///
/// Execution profile reproduced from Gunrock's k-core application: each
/// round k runs inner iterations of
///   filter  — a full pass over the vertex set producing the frontier of
///             alive degree-<=k vertices (Gunrock's filter operator works on
///             dense input frontiers, so every sub-iteration re-sweeps V),
///   advance — expanding the frontier's adjacency, atomically decrementing
///             neighbor degrees,
/// with ~3 kernel launches per iteration and |E|-sized frontier/candidate
/// buffers (why Gunrock OOMs before GSWITCH in Table III/V).
StatusOr<DecomposeResult> RunGunrockKCore(const CsrGraph& graph,
                                          const SystemConfig& config = {});

}  // namespace kcore

#endif  // KCORE_SYSTEMS_GUNROCK_H_
