#include "systems/medusa.h"

#include "common/timer.h"
#include "cpu/hindex.h"

namespace kcore {

namespace {

/// The MPM UDFs of paper §V: broadcast the current estimate; combine with
/// the h-index operator; adopt the refined value when it shrinks.
class MpmProgram {
 public:
  uint32_t SendMessage(VertexId /*v*/, uint32_t value) { return value; }

  uint32_t CombineMessages(VertexId /*v*/, uint32_t value,
                           std::span<const uint32_t> messages) {
    // One program object is shared by all lanes; the evaluator's scratch
    // histogram must therefore be per-thread.
    thread_local HIndexEvaluator evaluator;
    return evaluator.Evaluate(messages, value);
  }

  bool UpdateVertex(VertexId /*v*/, uint32_t& value, uint32_t combined) {
    if (combined < value) {
      value = combined;
      return true;  // estimate changed: another superstep is needed
    }
    return false;
  }
};

/// The peeling UDFs of paper §V: a vertex at degree <= k deletes itself and
/// messages 1 to its neighbors; the combiner sums deleted-neighbor counts;
/// the updater subtracts them from the degree and votes for more iterations
/// while un-deleted vertices remain at degree <= k.
class PeelProgram {
 public:
  explicit PeelProgram(VertexId n) : deleted_(n, 0), core_(n, 0) {}

  void set_k(uint32_t k) { k_ = k; }
  uint64_t deleted_total() const {
    return deleted_total_.load(std::memory_order_relaxed);
  }
  std::vector<uint32_t>& core() { return core_; }

  uint32_t SendMessage(VertexId v, uint32_t value) {
    if (deleted_[v] != 0 || value > k_) return 0;
    deleted_[v] = 1;
    core_[v] = k_;
    deleted_total_.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }

  uint32_t CombineMessages(VertexId /*v*/, uint32_t /*value*/,
                           std::span<const uint32_t> messages) {
    uint32_t sum = 0;
    for (uint32_t m : messages) sum += m;
    return sum;
  }

  bool UpdateVertex(VertexId v, uint32_t& value, uint32_t combined) {
    if (deleted_[v] != 0) return false;
    value -= std::min(value, combined);
    return value <= k_;  // this vertex still needs deleting at this k
  }

 private:
  uint32_t k_ = 0;
  std::vector<uint8_t> deleted_;
  std::vector<uint32_t> core_;
  std::atomic<uint64_t> deleted_total_{0};
};

}  // namespace

StatusOr<DecomposeResult> RunMedusaMpm(const CsrGraph& graph,
                                       const SystemConfig& config) {
  WallTimer timer;
  MedusaEngine<MpmProgram> engine(graph, config);
  KCORE_RETURN_IF_ERROR(engine.Init());

  // InitValue: estimates start at the degrees.
  {
    const auto deg = graph.DegreeArray();
    std::copy(deg.begin(), deg.end(), engine.values().begin());
  }

  MpmProgram program;
  while (true) {
    KCORE_ASSIGN_OR_RETURN(const uint64_t votes,
                           engine.RunSuperstep(program));
    if (votes == 0) break;
  }

  DecomposeResult result;
  result.core.assign(engine.values().begin(), engine.values().end());
  engine.FillMetrics(result.metrics);
  result.metrics.rounds = engine.supersteps();
  result.metrics.wall_ms = timer.ElapsedMillis();
  KCORE_RETURN_IF_ERROR(engine.device().CheckStatus());
  return result;
}

StatusOr<DecomposeResult> RunMedusaPeel(const CsrGraph& graph,
                                        const SystemConfig& config) {
  WallTimer timer;
  MedusaEngine<PeelProgram> engine(graph, config);
  KCORE_RETURN_IF_ERROR(engine.Init());

  {
    const auto deg = graph.DegreeArray();
    std::copy(deg.begin(), deg.end(), engine.values().begin());
  }

  PeelProgram program(graph.NumVertices());
  const VertexId n = graph.NumVertices();
  uint32_t k = 0;
  uint32_t rounds = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;
  // Outer loop of rounds added on top of Medusa's single iteration level
  // (paper §V: "We further add an outer loop of rounds").
  while (program.deleted_total() < n) {
    program.set_k(k);
    while (true) {
      KCORE_ASSIGN_OR_RETURN(const uint64_t votes,
                             engine.RunSuperstep(program));
      if (votes == 0) break;
    }
    ++k;
    ++rounds;
    if (k > k_limit) return Status::Internal("Medusa-Peel failed to converge");
  }

  DecomposeResult result;
  result.core = std::move(program.core());
  engine.FillMetrics(result.metrics);
  result.metrics.rounds = rounds;
  result.metrics.wall_ms = timer.ElapsedMillis();
  KCORE_RETURN_IF_ERROR(engine.device().CheckStatus());
  return result;
}

}  // namespace kcore
