// kcore_soak — chaos-soak harness for the kcore_server serving loop.
//
// Drives a seeded mixed workload (point queries, single-k mining, full
// decompositions; a slice cancelled, a slice with expired deadlines)
// through a long-lived KcoreServer, usually under an injected fault plan,
// and verifies every completed answer bit-for-bit against the BZ oracle.
// Exit codes: 0 clean soak, 1 setup error, 2 usage, 3 soak invariant
// violated (oracle mismatch, unresolved future, or unexpected failure).
//
//   kcore_soak [--graph=<edge_list>]        soak a real edge list, or
//              [--vertices=N] [--edges=M]   a generated ER + planted core
//              [--requests=N] [--seed=S]
//              [--engine=gpu|multigpu|cluster|vetga|bz|pkc|park|mpm]
//              [--faults=<spec>]            per-request device fault plan
//              [--cancel=F] [--deadline=F]  chaos fractions
//              [--update-fraction=F]        mutation slice: fraction of
//                                           slots that commit edge-update
//                                           batches (verified against a
//                                           fresh BZ after every batch)
//              [--update-batch=N]           edge updates per batch
//              [--json=<path>]              write the BENCH_serving report
//
// Composes with KCORE_FAULTS and KCORE_SIMCHECK=1 in the environment (each
// request's fresh device picks both up), which is how the ci_check.sh
// chaos-soak leg runs it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "serve/soak.h"

namespace {

using namespace kcore;

int Usage() {
  std::fprintf(stderr,
               "usage: kcore_soak [--graph=<edge_list>] [--vertices=N] "
               "[--edges=M]\n"
               "                  [--requests=N] [--seed=S] "
               "[--engine=<kind>] [--faults=<spec>]\n"
               "                  [--cancel=<frac>] [--deadline=<frac>] "
               "[--json=<path>]\n"
               "                  [--update-fraction=<frac>] "
               "[--update-batch=N]\n");
  return 2;
}

/// Strict non-negative integer parse; returns false on junk.
bool ParseU64(const char* raw, uint64_t* out) {
  if (*raw == '\0') return false;
  uint64_t value = 0;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    value = value * 10 + static_cast<uint64_t>(*p - '0');
  }
  *out = value;
  return true;
}

bool ParseFraction(const char* raw, double* out) {
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  // The inverted range test also rejects NaN (every comparison with NaN is
  // false, so `value < 0.0 || value > 1.0` would wave it through).
  if (end == raw || *end != '\0' || !(value >= 0.0 && value <= 1.0)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string json_path;
  std::string engine_token = "gpu";
  std::string faults;
  uint64_t vertices = 1500;
  uint64_t edges = 6000;
  SoakOptions options;
  options.num_requests = 5000;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--graph=", 8) == 0) {
      graph_path = arg + 8;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine_token = arg + 9;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      faults = arg + 9;
    } else if (std::strncmp(arg, "--vertices=", 11) == 0) {
      if (!ParseU64(arg + 11, &vertices) || vertices == 0) return Usage();
    } else if (std::strncmp(arg, "--edges=", 8) == 0) {
      if (!ParseU64(arg + 8, &edges)) return Usage();
    } else if (std::strncmp(arg, "--requests=", 11) == 0) {
      if (!ParseU64(arg + 11, &options.num_requests)) return Usage();
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseU64(arg + 7, &options.seed)) return Usage();
    } else if (std::strncmp(arg, "--cancel=", 9) == 0) {
      if (!ParseFraction(arg + 9, &options.cancel_fraction)) return Usage();
    } else if (std::strncmp(arg, "--deadline=", 11) == 0) {
      if (!ParseFraction(arg + 11, &options.deadline_fraction)) {
        return Usage();
      }
    } else if (std::strncmp(arg, "--update-fraction=", 18) == 0) {
      if (!ParseFraction(arg + 18, &options.update_fraction)) {
        return Usage();
      }
    } else if (std::strncmp(arg, "--update-batch=", 15) == 0) {
      uint64_t batch = 0;
      if (!ParseU64(arg + 15, &batch) || batch == 0) return Usage();
      options.update_batch = static_cast<uint32_t>(batch);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return Usage();
    }
  }
  if (!ParseEngineKind(engine_token, &options.server.engine)) {
    std::fprintf(stderr, "unknown --engine: %s\n", engine_token.c_str());
    return Usage();
  }
  options.server.engine_config.device.fault_spec = faults;
  options.server.engine_config.multi_gpu.worker_device.fault_spec = faults;
  options.server.engine_config.cluster.node_device.fault_spec = faults;
  options.server.engine_config.vetga.device.fault_spec = faults;

  CsrGraph graph;
  std::string label;
  if (!graph_path.empty()) {
    auto edges_or = LoadEdgeListText(graph_path);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    auto built = BuildGraph(*edges_or);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    graph = std::move(built->graph);
    label = graph_path;
  } else {
    // ER background + planted dense community: a realistic core-number
    // spread (many shells plus one deep core) at soak-friendly size.
    EdgeList list = GenerateErdosRenyi(static_cast<uint32_t>(vertices), edges,
                                      options.seed + 101);
    PlantedCoreOptions planted;
    planted.core_size = 48;
    planted.core_density = 0.5;
    list = OverlayPlantedCore(std::move(list),
                              static_cast<uint32_t>(vertices), planted,
                              options.seed + 202);
    graph = BuildUndirectedGraph(list);
    label = "er+planted";
  }

  auto report = RunSoak(graph, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", SoakReportSummary(*report).c_str());
  if (!json_path.empty()) {
    const std::string json = SoakReportJson(label, graph, options, *report);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!report->Clean()) {
    std::fprintf(stderr,
                 "error code=SoakInvariantViolated mismatches=%llu "
                 "unresolved=%llu failed=%llu completed=%llu\n",
                 static_cast<unsigned long long>(report->mismatches),
                 static_cast<unsigned long long>(report->unresolved),
                 static_cast<unsigned long long>(report->failed),
                 static_cast<unsigned long long>(report->completed));
    return 3;
  }
  return 0;
}
