// kcore_cli — command-line front end for the library.
//
//   kcore_cli stats      <edge_list>            graph statistics (Table I row)
//   kcore_cli decompose  <edge_list> [engine]   core numbers + metrics
//   kcore_cli shells     <edge_list>            shell-size histogram
//   kcore_cli hierarchy  <edge_list>            HCD forest summary
//   kcore_cli extract    <edge_list> <k> <out>  write the k-core's edge list
//
// Engines: gpu (default), bz, pkc, pkc-o, park, mpm, vetga, multigpu,
// cluster; plus xiang (single-k queries only, see --k below).
// Edge lists are SNAP-style text; IDs are recoded densely.
//
// --k=<K> (decompose, gpu/xiang engines): direct single-k core mining — the
// K-core's membership without a full decomposition. gpu runs one scan+loop
// kernel pair on the simulated device (src/core/gpu_peel.h GpuSingleKCore);
// xiang is the sort-free linear CPU algorithm (src/cpu/xiang.h). Composes
// with --simcheck, --faults, --expand, --renumber, --trace/--prof-summary
// on the gpu engine.
//
// --renumber (decompose, gpu/multigpu engines): degree-ordered vertex
// renumbering before peeling (src/graph/renumber.h) — core numbers are
// mapped back to the original IDs, so the output is unchanged; the run
// prints the loop imbalance the reordering is meant to shrink.
//
// --fuse (decompose, gpu engine): fuse the per-round scan and active-list
// compaction into one kernel launch and skip loop launches on empty
// k-shells (GpuPeelOptions::fuse_scan_compact); prints the launch counters
// the fusion is meant to cut.
//
// --simcheck (decompose, GPU engines only): runs the engine with the
// simulated-device sanitizer enabled (memcheck/initcheck/racecheck/
// synccheck, see src/cusim/simcheck.h); a detected violation fails the run
// with a report and a nonzero exit.
//
// --faults=<spec> (decompose, gpu/multigpu engines): attaches a fault plan
// to the simulated device(s) (see src/cusim/fault_injection.h for the
// grammar, e.g. --faults='launch_fail@3;bitflip:launch=12') and prints a
// recovery summary — retries, checkpoints, re-executed levels, devices
// lost, CPU-fallback levels — after the run. Composes with --simcheck.
//
// --expand=<thread|warp|block|auto> (decompose, gpu/multigpu engines):
// loop-phase frontier expansion granularity (DESIGN.md §8). warp is the
// paper's Alg. 3 path and the default; auto bins each frontier window by
// degree. The run prints the bin counters and the loop imbalance ratio.
//
// --nodes=<N> / --partition=<contiguous|degree|edgecut> (decompose, cluster
// engine): cluster shape and partition strategy for the simulated
// multi-node engine (src/cluster/cluster_peel.h, DESIGN.md §14). The run
// prints the network totals — comm ms / bytes on wire / aggregated link
// messages — and the comm/compute ratio, so partition quality is visible
// from the command line. Composes with --simcheck, --faults (node loss →
// repartition onto survivors), --trace/--prof-summary and --timeout-ms.
//
// --timeout-ms=<N> (decompose, GPU engines): gives the run a wall-clock
// deadline (common/cancellation.h). The engine checks it at every peel
// round boundary; an expired run stops within one round, releases the
// device, and the command exits nonzero with a structured one-line error.
//
// Exit codes: 0 success, 1 error (structured one-line `error code=...` on
// stderr), 2 usage, 4 degraded success — the answer is exact and printed,
// but the engine finished on the CPU fallback after device faults, which
// scripts watching for silent GPU degradation need to see.
//
// --trace=<path> (decompose, GPU engines): records the run with simprof
// (the Nsight-Systems analogue, see src/cusim/simprof.h) and writes a
// chrome://tracing JSON timeline to <path> — open it in Perfetto
// (ui.perfetto.dev) or chrome://tracing. --prof-summary prints the
// `nsys stats`-style per-kernel table instead of (or alongside) the file.
// Both compose with --simcheck, --faults and --expand.
//
// --updates=<file> (decompose, gpu engine): incremental streaming mode.
// Instead of one static decomposition, the initial graph is decomposed
// once, then the update stream (`+ u v` / `- u v` lines, see
// src/graph/edge_update.h) is applied in batches of --update-batch (default
// 64) on the GPU-resident incremental engine (src/core/incremental_core.h).
// Each committed epoch prints one line; the final coreness is verified
// against a fresh BZ of the updated graph. Composes with --simcheck,
// --faults and --timeout-ms.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <unordered_map>

#include "analysis/core_analysis.h"
#include "analysis/hierarchy.h"
#include "cluster/cluster_peel.h"
#include "common/cancellation.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "core/incremental_core.h"
#include "core/multi_gpu_peel.h"
#include "core/single_k.h"
#include "cpu/bz.h"
#include "cpu/mpm.h"
#include "cpu/park.h"
#include "cpu/pkc.h"
#include "graph/edge_update.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "vetga/vetga.h"

namespace {

using namespace kcore;

int Usage() {
  std::fprintf(stderr,
               "usage: kcore_cli <stats|decompose|shells|hierarchy|extract> "
               "<edge_list> [args]\n"
               "  decompose <edge_list> [gpu|bz|pkc|pkc-o|park|mpm|vetga|"
               "multigpu|cluster|xiang] [--simcheck] [--faults=<spec>]\n"
               "            [--expand=<thread|warp|block|auto>] [--k=<K>] "
               "[--renumber] [--fuse]\n"
               "            [--nodes=<N>] "
               "[--partition=<contiguous|degree|edgecut>]\n"
               "            [--trace=<out.json>] [--prof-summary] "
               "[--timeout-ms=<N>]\n"
               "            [--updates=<stream>] [--update-batch=<N>]\n"
               "  extract   <edge_list> <k> <output_edge_list>\n");
  return 2;
}

/// One-line machine-greppable error report: `error code=<Code> msg="..."`.
/// Every nonzero CLI exit goes through here (or Usage), so scripts can key
/// on the code instead of parsing prose.
void PrintError(const Status& status) {
  std::fprintf(stderr, "error code=%s msg=\"%s\"\n",
               StatusCodeToString(status.code()), status.message().c_str());
}

/// Degraded-success report (exit 4): the printed answer is exact, but the
/// engine finished on its CPU fallback after device faults.
void PrintDegraded(const char* what) {
  std::fprintf(stderr, "error code=DegradedSuccess msg=\"%s\"\n", what);
}

/// Strict parse of the --k flag value: digits only, value >= 1. Errors carry
/// the offending token in the same InvalidArgument context style as the
/// graph loader's.
StatusOr<uint32_t> ParseK(const std::string& raw) {
  if (raw.empty()) {
    return Status::InvalidArgument("--k=: empty k token (want --k=<K>, K >= 1)");
  }
  uint64_t value = 0;
  for (char ch : raw) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument(
          StrFormat("--k=%s: non-numeric k token: '%s'", raw.c_str(),
                    raw.c_str()));
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
    if (value > 0xFFFFFFFFull) {
      return Status::InvalidArgument(
          StrFormat("--k=%s: k token overflows uint32", raw.c_str()));
    }
  }
  if (value < 1) {
    return Status::InvalidArgument(StrFormat(
        "--k=%s: k must be >= 1 (the 0-core is every vertex)", raw.c_str()));
  }
  return static_cast<uint32_t>(value);
}

/// Strict parse of the --timeout-ms flag value: digits only. 0 is legal (an
/// already-expired deadline — deterministic fail-fast, used by tests).
StatusOr<uint64_t> ParseTimeoutMillis(const std::string& raw) {
  if (raw.empty()) {
    return Status::InvalidArgument(
        "--timeout-ms=: empty token (want --timeout-ms=<N>)");
  }
  uint64_t value = 0;
  for (char ch : raw) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument(StrFormat(
          "--timeout-ms=%s: non-numeric timeout token", raw.c_str()));
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
    if (value > 0xFFFFFFFFull) {
      return Status::InvalidArgument(StrFormat(
          "--timeout-ms=%s: timeout overflows uint32", raw.c_str()));
    }
  }
  return value;
}

/// Strict parse of the --nodes flag value: digits only, value >= 1.
StatusOr<uint32_t> ParseNodes(const std::string& raw) {
  if (raw.empty()) {
    return Status::InvalidArgument(
        "--nodes=: empty token (want --nodes=<N>, N >= 1)");
  }
  uint64_t value = 0;
  for (char ch : raw) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument(
          StrFormat("--nodes=%s: non-numeric node count", raw.c_str()));
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
    if (value > 0xFFFFFFFFull) {
      return Status::InvalidArgument(
          StrFormat("--nodes=%s: node count overflows uint32", raw.c_str()));
    }
  }
  if (value < 1) {
    return Status::InvalidArgument(
        StrFormat("--nodes=%s: node count must be >= 1", raw.c_str()));
  }
  return static_cast<uint32_t>(value);
}

StatusOr<BuiltGraph> Load(const char* path) {
  KCORE_ASSIGN_OR_RETURN(EdgeList edges, LoadEdgeListText(path));
  return BuildGraph(edges);
}

StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                    const std::string& engine, bool simcheck,
                                    const std::string& faults,
                                    const std::string& expand, bool renumber,
                                    bool fuse, const std::string& trace_path,
                                    bool prof_summary,
                                    const std::string& nodes_token,
                                    const std::string& partition_token,
                                    const CancelContext* cancel,
                                    std::string* summary) {
  if (engine == "xiang") {
    return Status::InvalidArgument(
        "engine xiang answers single-k queries only; pass --k=<K>");
  }
  if (renumber && engine != "gpu" && engine != "multigpu") {
    return Status::InvalidArgument(
        "--renumber only applies to the peeling GPU engines (gpu, multigpu)");
  }
  if (fuse && engine != "gpu") {
    return Status::InvalidArgument(
        "--fuse only applies to the gpu engine (scan->compact kernel fusion)");
  }
  if (simcheck && engine != "gpu" && engine != "vetga" &&
      engine != "multigpu" && engine != "cluster") {
    return Status::InvalidArgument(
        "--simcheck only applies to the GPU engines (gpu, vetga, multigpu, "
        "cluster)");
  }
  const bool profiling = !trace_path.empty() || prof_summary;
  if (profiling && engine != "gpu" && engine != "vetga" &&
      engine != "multigpu" && engine != "cluster") {
    return Status::InvalidArgument(
        "--trace/--prof-summary only apply to the GPU engines "
        "(gpu, vetga, multigpu, cluster)");
  }
  if (!faults.empty() && engine != "gpu" && engine != "multigpu" &&
      engine != "cluster") {
    return Status::InvalidArgument(
        "--faults only applies to the resilient GPU engines (gpu, multigpu, "
        "cluster)");
  }
  if (cancel != nullptr && engine != "gpu" && engine != "vetga" &&
      engine != "multigpu" && engine != "cluster") {
    return Status::InvalidArgument(
        "--timeout-ms only applies to the GPU engines (gpu, vetga, multigpu, "
        "cluster), which check the deadline at round boundaries");
  }
  if ((!nodes_token.empty() || !partition_token.empty()) &&
      engine != "cluster") {
    return Status::InvalidArgument(
        "--nodes/--partition only apply to the cluster engine");
  }
  ExpandStrategy expand_strategy = ExpandStrategy::kWarp;
  if (!expand.empty()) {
    if (engine != "gpu" && engine != "multigpu") {
      return Status::InvalidArgument(
          "--expand only applies to the peeling GPU engines (gpu, multigpu)");
    }
    if (!ParseExpandStrategy(expand, &expand_strategy)) {
      return Status::InvalidArgument("unknown --expand strategy: " + expand +
                                     " (want thread|warp|block|auto)");
    }
  }
  // Writes/summarizes a finished trace per the requested flags.
  const auto finish_trace = [&](const Trace& trace) -> Status {
    if (!trace_path.empty()) {
      KCORE_RETURN_IF_ERROR(trace.WriteChromeTrace(trace_path));
    }
    if (prof_summary) *summary = trace.KernelSummaryTable();
    return Status::OK();
  };
  if (engine == "gpu") {
    sim::DeviceOptions device_options;
    device_options.check_mode = simcheck;
    device_options.fault_spec = faults;
    device_options.profile = profiling;
    GpuPeelOptions options;
    options.expand_strategy = expand_strategy;
    options.renumber = renumber;
    options.fuse_scan_compact = fuse;
    options.cancel = cancel;
    sim::Device device(device_options);
    GpuPeelDecomposer decomposer(&device, options);
    auto result = decomposer.Decompose(graph);
    if (result.ok() && profiling && device.profiler() != nullptr) {
      KCORE_RETURN_IF_ERROR(finish_trace(device.profiler()->trace()));
    }
    return result;
  }
  if (engine == "bz") return RunBz(graph);
  if (engine == "pkc") return RunPkc(graph);
  if (engine == "pkc-o") {
    PkcOptions options;
    options.variant = PkcVariant::kOriginal;
    return RunPkc(graph, options);
  }
  if (engine == "park") return RunParK(graph);
  if (engine == "mpm") return RunMpm(graph);
  if (engine == "vetga") {
    VetgaConfig config;
    config.device.check_mode = simcheck;
    config.cancel = cancel;
    Trace trace;
    if (profiling) config.trace = &trace;
    auto result = RunVetga(graph, config);
    if (result.ok() && profiling) {
      KCORE_RETURN_IF_ERROR(finish_trace(trace));
    }
    return result;
  }
  if (engine == "multigpu") {
    MultiGpuOptions options;
    options.worker_device.check_mode = simcheck;
    options.worker_device.fault_spec = faults;
    options.expand_strategy = expand_strategy;
    options.renumber = renumber;
    options.cancel = cancel;
    Trace trace;
    if (profiling) options.trace = &trace;
    auto result = RunMultiGpuPeel(graph, options);
    if (result.ok() && profiling) {
      KCORE_RETURN_IF_ERROR(finish_trace(trace));
    }
    return result;
  }
  if (engine == "cluster") {
    ClusterOptions options;
    options.node_device.check_mode = simcheck;
    options.node_device.fault_spec = faults;
    options.cancel = cancel;
    if (!nodes_token.empty()) {
      KCORE_ASSIGN_OR_RETURN(options.num_nodes, ParseNodes(nodes_token));
    }
    if (!partition_token.empty() &&
        !ParsePartitionStrategy(partition_token, &options.partition)) {
      return Status::InvalidArgument(
          "unknown --partition strategy: " + partition_token +
          " (want contiguous|degree|edgecut)");
    }
    Trace trace;
    if (profiling) options.trace = &trace;
    auto result = RunClusterPeel(graph, options);
    if (result.ok() && profiling) {
      KCORE_RETURN_IF_ERROR(finish_trace(trace));
    }
    return result;
  }
  return Status::InvalidArgument("unknown engine: " + engine);
}

/// Routes a --k single-k query through the SingleKCore entry point
/// (src/core/single_k.h). gpu composes with the device flags; xiang is pure
/// CPU and rejects them.
StatusOr<SingleKCoreResult> SingleK(const CsrGraph& graph,
                                    const std::string& engine, uint32_t k,
                                    bool simcheck, const std::string& faults,
                                    const std::string& expand, bool renumber,
                                    const std::string& trace_path,
                                    bool prof_summary,
                                    const CancelContext* cancel,
                                    std::string* summary) {
  if (engine != "gpu" && engine != "xiang") {
    return Status::InvalidArgument(
        "--k single-k mining supports the gpu and xiang engines only (got " +
        engine + ")");
  }
  if (engine == "xiang") {
    if (simcheck || !faults.empty() || !expand.empty() || renumber ||
        !trace_path.empty() || prof_summary || cancel != nullptr) {
      return Status::InvalidArgument(
          "device flags (--simcheck/--faults/--expand/--renumber/--trace/"
          "--prof-summary/--timeout-ms) do not apply to the xiang CPU engine");
    }
    SingleKOptions options;
    options.engine = SingleKEngine::kCpu;
    return SingleKCore(graph, k, options);
  }
  SingleKOptions options;
  options.engine = SingleKEngine::kGpu;
  options.gpu.renumber = renumber;
  options.gpu.cancel = cancel;
  if (!expand.empty() &&
      !ParseExpandStrategy(expand, &options.gpu.expand_strategy)) {
    return Status::InvalidArgument("unknown --expand strategy: " + expand +
                                   " (want thread|warp|block|auto)");
  }
  sim::DeviceOptions device_options;
  device_options.check_mode = simcheck;
  device_options.fault_spec = faults;
  device_options.profile = !trace_path.empty() || prof_summary;
  sim::Device device(device_options);
  options.device = &device;
  auto result = SingleKCore(graph, k, options);
  if (result.ok() && device.profiler() != nullptr) {
    const Trace& trace = device.profiler()->trace();
    if (!trace_path.empty()) {
      KCORE_RETURN_IF_ERROR(trace.WriteChromeTrace(trace_path));
    }
    if (prof_summary) *summary = trace.KernelSummaryTable();
  }
  return result;
}

int CmdStats(const CsrGraph& graph) {
  const GraphStats stats = ComputeGraphStats(graph);
  const DecomposeResult result = RunBz(graph);
  std::printf("|V|      %s\n|E|      %s\nd_avg    %.2f\nd_std    %.2f\n"
              "d_max    %u\nk_max    %u\n",
              WithCommas(stats.num_vertices).c_str(),
              WithCommas(stats.num_edges).c_str(), stats.avg_degree,
              stats.degree_stddev, stats.max_degree, result.MaxCore());
  return 0;
}

int CmdDecompose(const CsrGraph& graph, const std::string& engine,
                 bool simcheck, const std::string& faults,
                 const std::string& expand, bool renumber, bool fuse,
                 const std::string& trace_path, bool prof_summary,
                 const std::string& nodes_token,
                 const std::string& partition_token,
                 const CancelContext* cancel) {
  std::string summary;
  auto result = Decompose(graph, engine, simcheck, faults, expand, renumber,
                          fuse, trace_path, prof_summary, nodes_token,
                          partition_token, cancel, &summary);
  if (!result.ok()) {
    PrintError(result.status());
    return 1;
  }
  std::printf("engine       %s\nk_max        %u\nrounds       %u\n"
              "modeled_ms   %.3f\nwall_ms      %.3f\npeak_device  %s\n",
              engine.c_str(), result->MaxCore(), result->metrics.rounds,
              result->metrics.modeled_ms, result->metrics.wall_ms,
              HumanBytes(result->metrics.peak_device_bytes).c_str());
  if (simcheck) std::printf("simcheck     clean\n");
  if (renumber) {
    std::printf("--- renumber ---\n"
                "renumber        degree-ordered\n"
                "loop_imbalance  %.3f\n",
                result->metrics.loop_imbalance);
  }
  if (fuse) {
    const PerfCounters& c = result->metrics.counters;
    std::printf("--- fusion ---\n"
                "kernel_launches %llu\n"
                "compactions     %llu\n",
                static_cast<unsigned long long>(c.kernel_launches),
                static_cast<unsigned long long>(c.compactions));
  }
  if (!expand.empty()) {
    const PerfCounters& c = result->metrics.counters;
    std::printf("--- expansion ---\n"
                "expand          %s\n"
                "bin_thread      %llu\n"
                "bin_warp        %llu\n"
                "bin_block       %llu\n"
                "loop_imbalance  %.3f\n",
                expand.c_str(),
                static_cast<unsigned long long>(c.loop_bin_thread),
                static_cast<unsigned long long>(c.loop_bin_warp),
                static_cast<unsigned long long>(c.loop_bin_block),
                result->metrics.loop_imbalance);
  }
  if (!faults.empty()) {
    const Metrics& m = result->metrics;
    std::printf("--- recovery summary ---\n"
                "retries             %u\n"
                "checkpoints_taken   %u\n"
                "levels_reexecuted   %u\n"
                "devices_lost        %u\n"
                "cpu_fallback_levels %u\n"
                "recovery_ms         %.3f\n"
                "degraded            %s\n",
                m.retries, m.checkpoints_taken, m.levels_reexecuted,
                m.devices_lost, m.cpu_fallback_levels, m.recovery_ms,
                m.degraded ? "yes (finished on CPU warm-start)" : "no");
  }
  if (engine == "cluster") {
    const Metrics& m = result->metrics;
    const double compute_ms = m.modeled_ms - m.comm_ms;
    std::printf("--- cluster ---\n"
                "nodes           %s\n"
                "partition       %s\n"
                "comm_ms         %.3f\n"
                "comm_bytes      %s\n"
                "comm_messages   %llu\n"
                "comm/compute    %.3f\n",
                nodes_token.empty() ? "2" : nodes_token.c_str(),
                partition_token.empty() ? "degree" : partition_token.c_str(),
                m.comm_ms, HumanBytes(m.comm_bytes).c_str(),
                static_cast<unsigned long long>(m.comm_messages),
                compute_ms > 0.0 ? m.comm_ms / compute_ms : 0.0);
  }
  if (!trace_path.empty()) std::printf("trace        %s\n", trace_path.c_str());
  if (prof_summary) {
    std::printf("--- kernel summary ---\n%s", summary.c_str());
  }
  if (result->metrics.degraded) {
    // The printed answer is exact, but the GPU run did not survive on its
    // own — scripts must be able to see that without parsing the table.
    PrintDegraded("decomposition finished on the CPU fallback after device "
                  "faults; answer exact");
    return 4;
  }
  return 0;
}

int CmdSingleK(const CsrGraph& graph, const std::string& engine, uint32_t k,
               bool simcheck, const std::string& faults,
               const std::string& expand, bool renumber,
               const std::string& trace_path, bool prof_summary,
               const CancelContext* cancel) {
  std::string summary;
  auto result = SingleK(graph, engine, k, simcheck, faults, expand, renumber,
                        trace_path, prof_summary, cancel, &summary);
  if (!result.ok()) {
    PrintError(result.status());
    return 1;
  }
  std::printf("engine       %s\nk            %u\ncore_size    %s\n"
              "modeled_ms   %.3f\nwall_ms      %.3f\npeak_device  %s\n",
              engine.c_str(), result->k,
              WithCommas(result->vertices.size()).c_str(),
              result->metrics.modeled_ms, result->metrics.wall_ms,
              HumanBytes(result->metrics.peak_device_bytes).c_str());
  if (simcheck) std::printf("simcheck     clean\n");
  if (!faults.empty()) {
    const Metrics& m = result->metrics;
    std::printf("--- recovery summary ---\n"
                "retries             %u\n"
                "devices_lost        %u\n"
                "cpu_fallback_levels %u\n"
                "recovery_ms         %.3f\n"
                "degraded            %s\n",
                m.retries, m.devices_lost, m.cpu_fallback_levels,
                m.recovery_ms,
                m.degraded ? "yes (answered by CPU xiang)" : "no");
  }
  if (!trace_path.empty()) std::printf("trace        %s\n", trace_path.c_str());
  if (prof_summary) {
    std::printf("--- kernel summary ---\n%s", summary.c_str());
  }
  if (result->metrics.degraded) {
    PrintDegraded("k-core answered by the CPU (xiang) after device faults; "
                  "answer exact");
    return 4;
  }
  return 0;
}

/// Incremental streaming mode (`decompose --updates=<file>`): the initial
/// graph is decomposed once, then the stream is applied batch by batch on
/// the GPU-resident incremental engine, one printed line per committed
/// epoch, with a final bit-for-bit verification against the BZ oracle.
int CmdUpdates(const BuiltGraph& built, const std::string& engine,
               const std::string& updates_path, uint64_t batch_size,
               bool simcheck, const std::string& faults,
               const CancelContext* cancel) {
  const CsrGraph& graph = built.graph;
  if (engine != "gpu") {
    PrintError(Status::InvalidArgument(
        "--updates applies to the gpu engine (the incremental maintenance "
        "engine); got " + engine));
    return 1;
  }
  auto stream = LoadUpdateStreamText(updates_path);
  if (!stream.ok()) {
    PrintError(stream.status());
    return 1;
  }
  // Update endpoints arrive in the edge list's original ID space; the
  // builder recoded those densely, so remap before touching the engine.
  // Unknown IDs are rejected: the resident device graph has a fixed vertex
  // set, streaming cannot grow it.
  if (!built.original_ids.empty()) {
    std::unordered_map<uint64_t, VertexId> to_dense;
    to_dense.reserve(built.original_ids.size());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      to_dense[built.original_ids[v]] = v;
    }
    for (size_t i = 0; i < stream->size(); ++i) {
      EdgeUpdate& e = (*stream)[i];
      const auto iu = to_dense.find(e.u);
      const auto iv = to_dense.find(e.v);
      if (iu == to_dense.end() || iv == to_dense.end()) {
        PrintError(Status::InvalidArgument(StrFormat(
            "update %zu: endpoint %u is not in the graph's vertex set "
            "(streaming mode cannot add vertices)",
            i, iu == to_dense.end() ? e.u : e.v)));
        return 1;
      }
      e.u = iu->second;
      e.v = iv->second;
    }
  }
  sim::DeviceOptions device_options;
  device_options.check_mode = simcheck;
  device_options.fault_spec = faults;
  IncrementalOptions options;
  options.cancel = cancel;
  auto engine_or = IncrementalCoreEngine::Create(graph, options,
                                                 device_options);
  if (!engine_or.ok()) {
    PrintError(engine_or.status());
    return 1;
  }
  auto& inc = *engine_or;
  double total_modeled_ms = 0.0;
  uint64_t total_changed = 0;
  uint64_t full_repeels = 0;
  bool degraded_any = false;
  for (size_t off = 0; off < stream->size(); off += batch_size) {
    const size_t len =
        std::min<size_t>(batch_size, stream->size() - off);
    auto result = inc->ApplyUpdates(
        std::span<const EdgeUpdate>(stream->data() + off, len));
    if (!result.ok()) {
      PrintError(result.status());
      return 1;
    }
    std::printf("epoch %-4llu  updates %-4zu  changed %-6zu  affected %-6llu"
                "  modeled %8.3f ms%s%s%s\n",
                static_cast<unsigned long long>(result->epoch), len,
                result->changed.size(),
                static_cast<unsigned long long>(result->affected),
                result->metrics.modeled_ms,
                result->full_repeel ? "  [full re-peel]" : "",
                result->compacted ? "  [compacted]" : "",
                result->degraded ? "  [degraded]" : "");
    total_modeled_ms += result->metrics.modeled_ms;
    total_changed += result->changed.size();
    full_repeels += result->full_repeel ? 1 : 0;
    degraded_any |= result->degraded;
  }
  // The stream's end state must match a from-scratch decomposition — the
  // CLI doubles as a smoke harness for the incremental path.
  const DecomposeResult oracle = RunBz(inc->CurrentGraph());
  if (oracle.core != inc->core()) {
    PrintError(Status::Internal(
        "incremental coreness diverged from the BZ oracle"));
    return 1;
  }
  std::printf("engine       gpu-incremental\nupdates      %s\n"
              "epochs       %llu\nk_max        %u\nchanged      %s\n"
              "full_repeels %llu\nmodeled_ms   %.3f\nverify       ok (bz)\n",
              WithCommas(stream->size()).c_str(),
              static_cast<unsigned long long>(inc->epoch()), oracle.MaxCore(),
              WithCommas(total_changed).c_str(),
              static_cast<unsigned long long>(full_repeels),
              total_modeled_ms);
  if (simcheck) std::printf("simcheck     clean\n");
  if (degraded_any) {
    PrintDegraded("one or more update batches finished on the exact CPU "
                  "path after device faults; answers exact");
    return 4;
  }
  return 0;
}

int CmdShells(const CsrGraph& graph) {
  const DecomposeResult result = RunBz(graph);
  const auto histogram = CoreHistogram(result.core);
  std::printf("k-shell sizes (k: count)\n");
  for (size_t k = 0; k < histogram.size(); ++k) {
    if (histogram[k] != 0) {
      std::printf("%4zu: %s\n", k, WithCommas(histogram[k]).c_str());
    }
  }
  return 0;
}

int CmdHierarchy(const CsrGraph& graph) {
  const DecomposeResult result = RunBz(graph);
  const CoreHierarchy hierarchy = BuildCoreHierarchy(graph, result.core);
  std::printf("HCD forest: %zu nodes\n", hierarchy.nodes.size());
  uint32_t roots = 0;
  for (const auto& node : hierarchy.nodes) roots += node.parent < 0;
  std::printf("roots (connected components incl. isolated): %u\n", roots);
  // Print the densest few components.
  size_t printed = 0;
  for (size_t i = 0; i < hierarchy.nodes.size() && printed < 10; ++i) {
    const auto& node = hierarchy.nodes[i];
    std::printf("  node %zu: k=%u, own vertices %zu, parent %d\n", i, node.k,
                node.vertices.size(), node.parent);
    ++printed;
  }
  return 0;
}

int CmdExtract(const BuiltGraph& built, uint32_t k, const char* out_path) {
  const DecomposeResult result = RunBz(built.graph);
  const InducedSubgraph sub = KCoreSubgraph(built.graph, result.core, k);
  EdgeList edges;
  for (VertexId v = 0; v < sub.graph.NumVertices(); ++v) {
    for (VertexId u : sub.graph.Neighbors(v)) {
      if (v < u) {
        const uint64_t ov =
            built.original_ids.empty() ? sub.parent_ids[v]
                                       : built.original_ids[sub.parent_ids[v]];
        const uint64_t ou =
            built.original_ids.empty() ? sub.parent_ids[u]
                                       : built.original_ids[sub.parent_ids[u]];
        edges.push_back({ov, ou});
      }
    }
  }
  const Status status = SaveEdgeListText(edges, out_path);
  if (!status.ok()) {
    PrintError(status);
    return 1;
  }
  std::printf("wrote %zu edges of the %u-core (%u vertices) to %s\n",
              edges.size(), k, sub.graph.NumVertices(), out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the --simcheck, --faults, --expand, --k, --renumber, --fuse,
  // --trace and --prof-summary flags wherever they appear.
  bool simcheck = false;
  bool prof_summary = false;
  bool renumber = false;
  bool fuse = false;
  bool have_k = false;
  bool have_timeout = false;
  std::string k_token;
  std::string timeout_token;
  std::string faults;
  std::string expand;
  std::string trace_path;
  std::string updates_path;
  std::string update_batch_token;
  std::string nodes_token;
  std::string partition_token;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--simcheck") == 0) {
      simcheck = true;
    } else if (std::strcmp(argv[i], "--prof-summary") == 0) {
      prof_summary = true;
    } else if (std::strcmp(argv[i], "--renumber") == 0) {
      renumber = true;
    } else if (std::strcmp(argv[i], "--fuse") == 0) {
      fuse = true;
    } else if (std::strncmp(argv[i], "--k=", 4) == 0) {
      have_k = true;
      k_token = argv[i] + 4;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      have_timeout = true;
      timeout_token = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      faults = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--expand=", 9) == 0) {
      expand = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--updates=", 10) == 0) {
      updates_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--update-batch=", 15) == 0) {
      update_batch_token = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_token = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--partition=", 12) == 0) {
      partition_token = argv[i] + 12;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (argc < 3) return Usage();
  const std::string command = argv[1];

  auto built = Load(argv[2]);
  if (!built.ok()) {
    PrintError(built.status());
    return 1;
  }

  // One deadline for the whole command: admission-to-answer, enforced by
  // the engine at round boundaries.
  CancelContext lifecycle;
  const CancelContext* cancel = nullptr;
  if (have_timeout) {
    auto timeout_ms = ParseTimeoutMillis(timeout_token);
    if (!timeout_ms.ok()) {
      PrintError(timeout_ms.status());
      return 1;
    }
    lifecycle.deadline =
        Deadline::AfterMillis(static_cast<double>(*timeout_ms));
    cancel = &lifecycle;
  }

  if (cancel != nullptr && command != "decompose") {
    PrintError(Status::InvalidArgument(
        "--timeout-ms applies to the decompose command only"));
    return 1;
  }
  if (command == "stats") return CmdStats(built->graph);
  if (command == "decompose") {
    const std::string engine = argc > 3 ? argv[3] : "gpu";
    if (!updates_path.empty()) {
      if (have_k || fuse || renumber || !expand.empty() ||
          !trace_path.empty() || prof_summary || !nodes_token.empty() ||
          !partition_token.empty()) {
        PrintError(Status::InvalidArgument(
            "--updates streaming mode composes with --simcheck, --faults "
            "and --timeout-ms only"));
        return 1;
      }
      uint64_t batch_size = 64;
      if (!update_batch_token.empty()) {
        auto parsed = ParseTimeoutMillis(update_batch_token);
        if (!parsed.ok() || *parsed == 0) {
          PrintError(Status::InvalidArgument(
              "--update-batch=" + update_batch_token +
              ": want a positive batch size"));
          return 1;
        }
        batch_size = *parsed;
      }
      return CmdUpdates(*built, engine, updates_path, batch_size,
                        simcheck, faults, cancel);
    }
    if (!update_batch_token.empty()) {
      PrintError(Status::InvalidArgument(
          "--update-batch requires --updates=<stream>"));
      return 1;
    }
    if (have_k) {
      auto k = ParseK(k_token);
      if (!k.ok()) {
        PrintError(k.status());
        return 1;
      }
      if (fuse) {
        PrintError(Status::InvalidArgument(
            "--fuse applies to the full decomposition only (single-k mining "
            "has no per-round scan/compact pair to fuse)"));
        return 1;
      }
      if (!nodes_token.empty() || !partition_token.empty()) {
        PrintError(Status::InvalidArgument(
            "--nodes/--partition apply to the full cluster decomposition "
            "only (single-k mining runs on one device)"));
        return 1;
      }
      return CmdSingleK(built->graph, engine, *k, simcheck, faults, expand,
                        renumber, trace_path, prof_summary, cancel);
    }
    return CmdDecompose(built->graph, engine, simcheck, faults, expand,
                        renumber, fuse, trace_path, prof_summary, nodes_token,
                        partition_token, cancel);
  }
  if (command == "shells") return CmdShells(built->graph);
  if (command == "hierarchy") return CmdHierarchy(built->graph);
  if (command == "extract") {
    if (argc < 5) return Usage();
    auto k = ParseK(argv[3]);  // strict: `extract g.txt foo out` used to
    if (!k.ok()) {             // silently become k=0 via atoi
      PrintError(k.status());
      return 1;
    }
    return CmdExtract(*built, *k, argv[4]);
  }
  return Usage();
}
