// simlint fixture: plain stores through DeviceArray-backed pointers from
// kernel code. Every block of the launch can reach these addresses, so each
// non-atomic, uncharged store is a modeled cross-block race (and invisible
// to the cost model). Analyzed by simlint_test against the golden
// diagnostics in broken_cross_block_race.golden.
#include <cstdint>

#include "cusim/annotations.h"

namespace kcore::fixture {

template <typename DeviceArrayU32, typename Counters>
KCORE_KERNEL void RemoveVertexRaw(DeviceArrayU32& d_deg, DeviceArrayU32& d_alive,
                                  DeviceArrayU32& d_removed, uint32_t v,
                                  uint32_t k, Counters& c) {
  uint32_t* deg = d_deg.data();
  uint32_t* alive = d_alive.data();
  uint32_t* removed = d_removed.data();

  alive[v] = 0;

  deg[v] -= 1;

  ++removed[0];

  uint32_t* tail = d_removed.data();
  *tail = k;

  // The charged accessors are the correct spelling and must NOT be flagged.
  sim::GlobalStore(&alive[v], uint32_t{0}, c);
  sim::AtomicSub(&deg[v], uint32_t{1}, c);
}

}  // namespace kcore::fixture
