// simlint fixture: host-only Device surface invoked from kernel code. The
// device.h thread-compatibility contract confines alloc/launch/clock/IO
// methods to the host driving thread; calling them from inside a Launch
// body is the cusim analogue of calling cudaMalloc from a __global__
// function. Analyzed by simlint_test against the golden diagnostics in
// broken_host_confinement.golden.
#include <cstdint>

#include "cusim/annotations.h"

namespace kcore::fixture {

template <typename Device, typename BlockCtx>
KCORE_KERNEL void DeviceSideMisuse(Device* device, BlockCtx& block) {
  (void)device->HealthCheck();

  (void)device->WriteTrace("trace.json");

  const double now_ms = device->modeled_ms();
  (void)now_ms;

  block.Sync();  // device-side barrier: fine.
}

// Launch-from-kernel: dynamic parallelism does not exist in the simulated
// device; nested launches must be driven from the host loop.
template <typename Device>
Status NestedLaunch(Device& device) {
  return device.Launch(1, 32, "outer", [&](auto& block) {
    (void)device.Launch(1, 32, "inner", [&](auto& inner) { inner.Sync(); });
  });
}

}  // namespace kcore::fixture
