// simlint fixture: every barrier below is reachable by only a subset of the
// threads that must arrive, the modeled analogue of __syncthreads() under
// divergent control flow (UB on real hardware, a synccheck hang here).
// Never compiled into a target; analyzed by simlint_test against the golden
// diagnostics in broken_sync_divergence.golden.
#include <cstdint>

#include "cusim/annotations.h"

namespace kcore::fixture {

// Block barrier hoisted INTO per-warp code: only the threads of one warp can
// reach each dynamic instance, so the block-wide rendezvous never completes.
template <typename BlockCtx>
KCORE_KERNEL void WarpScopedBarrier(BlockCtx& block, uint32_t* histogram) {
  block.ForEachWarp([&](auto& warp) {
    histogram[warp.warp_id()] += 1;
    block.Sync();
  });
}

// Barrier under identity-derived control flow: the helper receives the warp
// id as a parameter, so `warp_id == 0` diverges between warps of the block.
template <typename BlockCtx>
KCORE_KERNEL void LeaderOnlyBarrier(BlockCtx& block, uint32_t warp_id) {
  if (warp_id == 0) {
    block.Sync();
  }
}

// Warp barrier inside per-lane code: SyncWarp is a full-warp rendezvous and
// must sit at warp scope, not inside a ForEachLane body.
template <typename WarpCtx>
KCORE_KERNEL void LaneScopedWarpBarrier(WarpCtx& warp, uint32_t* out) {
  warp.ForEachLane([&](uint32_t lane) {
    out[lane] = lane;
    warp.SyncWarp();
  });
}

}  // namespace kcore::fixture
