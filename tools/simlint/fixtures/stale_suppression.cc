// simlint fixture: a suppression comment with no finding under it. Strict
// mode (the default, used by the tree-wide gate) reports it as
// stale-suppression so silenced exceptions cannot outlive the code they
// excused; --lax-suppressions turns the check off. Analyzed by simlint_test
// against the golden diagnostics in stale_suppression.golden.
#include <cstdint>

namespace kcore::fixture {

inline uint32_t DoubleIt(uint32_t x) {
  // simlint:allow(cross-block-race): leftover from a deleted raw store
  return 2 * x;
}

}  // namespace kcore::fixture
