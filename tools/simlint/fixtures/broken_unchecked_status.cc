// simlint fixture: Status / StatusOr results dropped on the floor. A failed
// launch, allocation, or graph-IO call must never be silently ignored; the
// checked spellings (KCORE_RETURN_IF_ERROR, capture, explicit (void)) all
// pass the analyzer's shape test. Analyzed by simlint_test against the
// golden diagnostics in broken_unchecked_status.golden.
#include <cstdint>
#include <string>

#include "cusim/annotations.h"

namespace kcore::fixture {

template <typename Device, typename Graph, typename TraceT>
Status RunAll(Device& device, const Graph& graph, const TraceT& trace,
              uint64_t n) {
  device.Launch(4, 32, "noop", [&](auto& block) { block.Sync(); });

  device.Alloc<uint32_t>(n, "scratch");

  trace.WriteChromeTrace("/tmp/out.json");

  graph.Validate();

  (void)device.HealthCheck();  // explicit discard: allowed.

  KCORE_RETURN_IF_ERROR(device.CheckStatus());  // checked: allowed.

  return device.CopyToHost();  // propagated: allowed.
}

}  // namespace kcore::fixture
