// simlint fixture: observer code (profiler/checker/trace hooks) that charges
// the modeled clock. Each violation would make a profiled run's modeled_ms
// differ from an unprofiled one, breaking the zero-cost-off contract that
// trace_test asserts dynamically. Analyzed by simlint_test against the
// golden diagnostics in broken_clock_purity.golden.
#include <cstdint>

#include "cusim/annotations.h"

namespace kcore::fixture {

class KCORE_OBSERVER LeakyProfiler {
 public:
  void OnLaunch(uint32_t num_blocks) {
    ++counters_.kernel_launches;
    counters_.barriers += 1;
    launches_seen_ += 1;  // observer-private state: fine.
  }

  void ResetClock(double* modeled_ns) {
    *modeled_ns = 0.0;
  }

  template <typename BlockCtx>
  void Flush(BlockCtx& block) {
    block.Sync();
  }

 private:
  PerfCounters counters_;
  uint64_t launches_seen_ = 0;
};

// Zero-cost-off guard: the body only runs when profiling is enabled, so any
// charge inside it shifts modeled time between profiled and plain runs.
template <typename BlockCtx, typename Profiler>
KCORE_KERNEL void GuardedKernel(BlockCtx& block, Profiler* profiler) {
  if (profiler != nullptr) {
    block.Sync();
  }
  block.Sync();  // unconditional: every thread arrives, correctly charged.
}

}  // namespace kcore::fixture
