// simlint fixture: a well-behaved kernel + host driver pair exercising the
// same constructs the broken_* fixtures misuse — charged accessors, block-
// uniform barriers, checked Status, and one justified (used) suppression.
// simlint_test asserts the analyzer reports nothing here.
#include <cstdint>

#include "cusim/annotations.h"

namespace kcore::fixture {

// Single-block init kernel: the suppression below is *used*, so it is not
// reported as stale, and the store it excuses is not reported as a race.
template <typename DeviceArrayU32>
KCORE_KERNEL void InitDegrees(DeviceArrayU32& d_deg, uint32_t n) {
  uint32_t* deg = d_deg.data();
  for (uint32_t v = 0; v < n; ++v) {
    deg[v] = 0;  // simlint:allow(cross-block-race): single-block init kernel
  }
}

template <typename BlockCtx, typename DeviceArrayU32, typename Counters>
KCORE_KERNEL void ReduceKernel(BlockCtx& block, DeviceArrayU32& d_out,
                               Counters& c) {
  uint32_t* out = d_out.data();
  block.ForEachWarp([&](auto& warp) {
    warp.ForEachLane([&](uint32_t lane) {
      sim::AtomicAdd(&out[0], lane, c);
    });
  });
  block.Sync();  // block-uniform: every thread arrives.
  sim::GlobalStore(&out[1], uint32_t{1}, c);
}

template <typename Device>
Status Drive(Device& device) {
  KCORE_RETURN_IF_ERROR(device.HealthCheck());
  return device.Launch(4, 64, "reduce", [&](auto& block) { block.Sync(); });
}

}  // namespace kcore::fixture
