#include "lexer.h"

#include <cctype>
#include <cstring>

namespace kcore::simlint {
namespace {

/// Multi-character punctuators, longest first so maximal munch falls out of
/// linear probing. Three-character operators before two-character ones.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool StartsWith(const char* s) const {
    return src_.compare(pos_, std::strlen(s), s) == 0;
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  size_t pos() const { return pos_; }
  int line() const { return line_; }
  int col() const { return col_; }
  std::string Slice(size_t from) const { return src_.substr(from, pos_ - from); }

 private:
  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  Cursor cur(source);
  bool line_start = true;  // Only whitespace seen since the last newline.

  auto emit = [&](TokKind kind, size_t from, int line, int col) {
    tokens.push_back({kind, cur.Slice(from), line, col});
  };

  while (!cur.AtEnd()) {
    const char c = cur.Peek();
    const int line = cur.line();
    const int col = cur.col();
    const size_t from = cur.pos();

    if (c == '\n') {
      cur.Advance();
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.Advance();
      continue;
    }

    // Preprocessor directive: '#' first on its line; swallow continuations.
    if (c == '#' && line_start) {
      while (!cur.AtEnd() && cur.Peek() != '\n') {
        if (cur.Peek() == '\\' && cur.Peek(1) == '\n') cur.Advance();
        cur.Advance();
      }
      emit(TokKind::kDirective, from, line, col);
      line_start = true;
      continue;
    }
    line_start = false;

    // Comments.
    if (c == '/' && cur.Peek(1) == '/') {
      while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
      emit(TokKind::kComment, from, line, col);
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      cur.AdvanceBy(2);
      while (!cur.AtEnd() && !(cur.Peek() == '*' && cur.Peek(1) == '/')) {
        cur.Advance();
      }
      cur.AdvanceBy(2);
      emit(TokKind::kComment, from, line, col);
      continue;
    }

    // Raw string literals: R"delim( ... )delim".
    if (c == 'R' && cur.Peek(1) == '"') {
      cur.AdvanceBy(2);
      std::string delim;
      while (!cur.AtEnd() && cur.Peek() != '(') delim += cur.Advance();
      const std::string close = ")" + delim + "\"";
      while (!cur.AtEnd() && !cur.StartsWith(close.c_str())) cur.Advance();
      cur.AdvanceBy(close.size());
      emit(TokKind::kString, from, line, col);
      continue;
    }

    // String / char literals with escape handling.
    if (c == '"' || c == '\'') {
      const char quote = cur.Advance();
      while (!cur.AtEnd() && cur.Peek() != quote && cur.Peek() != '\n') {
        if (cur.Peek() == '\\') cur.Advance();
        if (!cur.AtEnd()) cur.Advance();
      }
      if (!cur.AtEnd() && cur.Peek() == quote) cur.Advance();
      emit(quote == '"' ? TokKind::kString : TokKind::kChar, from, line, col);
      continue;
    }

    // Numbers (handles hex, floats, exponents, ' separators; a leading '.'
    // followed by a digit is a float).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.Peek(1))))) {
      cur.Advance();
      while (!cur.AtEnd()) {
        const char n = cur.Peek();
        if (IsIdentChar(n) || n == '.' || n == '\'') {
          // Exponent signs: 1e-5, 0x1p+3.
          if ((n == 'e' || n == 'E' || n == 'p' || n == 'P') &&
              (cur.Peek(1) == '+' || cur.Peek(1) == '-')) {
            cur.AdvanceBy(2);
            continue;
          }
          cur.Advance();
          continue;
        }
        break;
      }
      emit(TokKind::kNumber, from, line, col);
      continue;
    }

    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) cur.Advance();
      emit(TokKind::kIdent, from, line, col);
      continue;
    }

    // Punctuation, maximal munch.
    bool matched = false;
    for (const char* p : kPuncts) {
      if (cur.StartsWith(p)) {
        cur.AdvanceBy(std::strlen(p));
        emit(TokKind::kPunct, from, line, col);
        matched = true;
        break;
      }
    }
    if (!matched) {
      cur.Advance();
      emit(TokKind::kPunct, from, line, col);
    }
  }
  return tokens;
}

}  // namespace kcore::simlint
