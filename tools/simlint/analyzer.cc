#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "lexer.h"

namespace kcore::simlint {
namespace {

/// PerfCounters fields that feed CostModel::UnitTimeNs / launch cost — the
/// "charged" meters whose mutation from observer code would shift modeled
/// time. Uncharged meters (edges_traversed, buffer_appends, ...) are fair
/// game for observers.
const std::set<std::string>& ChargedState() {
  static const std::set<std::string> s = {
      "lane_ops",      "global_reads",  "global_writes", "global_atomics",
      "shared_ops",    "shared_atomics", "barriers",      "scan_steps",
      "kernel_launches",
      // The modeled clocks themselves (device members and the read-only
      // pointers handed to SimProfiler).
      "modeled_ns_", "transfer_ns_", "modeled_ns", "transfer_ns"};
  return s;
}

/// Calls that advance counters or the modeled clock: the cusim DSL accessors
/// plus CostModel charging entry points. Observer code may never reach these.
const std::set<std::string>& ChargingCalls() {
  static const std::set<std::string> s = {
      "AtomicAdd",     "AtomicSub",   "AtomicMax",      "AtomicMin",
      "AtomicCas",     "AtomicExch",  "GlobalLoad",     "GlobalStore",
      "SharedLoad",    "SharedStore", "SharedAlloc",    "Sync",
      "SyncWarp",      "ChargeTransfer", "AddSerial",   "AddOverheadNs",
      "AddParallelPhase"};
  return s;
}

/// Status/StatusOr-returning APIs whose bare discard rule unchecked-status
/// flags. Matches the [[nodiscard]] sweep in device.h / src/graph / src/core.
const std::set<std::string>& StatusApis() {
  static const std::set<std::string> s = {
      "Launch",        "Alloc",          "AllocUninit",   "CopyFromHost",
      "CopyToHost",    "HealthCheck",    "CheckStatus",   "WriteTrace",
      "WriteChromeTrace", "Validate",    "BuildGraph",    "LoadEdgeListText",
      "SaveEdgeListText", "SaveCsrBinary", "LoadCsrBinary"};
  return s;
}

/// Host-only Device surface (the device.h thread-compatibility contract):
/// never callable from kernel code. Extended per-file by KCORE_HOST_ONLY
/// annotations found in the analyzed source.
const std::set<std::string>& HostOnlyCalls() {
  static const std::set<std::string> s = {
      "Alloc",        "AllocUninit",  "Launch",       "HealthCheck",
      "CheckStatus",  "ResetClock",   "MarkCorruptible", "WriteTrace",
      "CopyFromHost", "CopyToHost",   "modeled_ms",   "transfer_ms",
      "current_bytes", "peak_bytes"};
  return s;
}

/// Block-wide collectives defined in warp_scan.h — __syncthreads-equivalent
/// convergence requirements, seeded into the per-file sync call graph.
const std::set<std::string>& LibraryCollectives() {
  static const std::set<std::string> s = {"BlockExclusiveScan",
                                          "BlockBallotExclusiveScan"};
  return s;
}

/// Identity accessors whose value diverges between threads *within* one
/// block — the scope a block barrier synchronizes. block_id is deliberately
/// absent: blockIdx-derived flow is uniform inside each block, so a barrier
/// under it is convergent (every thread of a given block takes the same
/// path), exactly as in real CUDA.
const std::set<std::string>& IntraBlockIdentity() {
  static const std::set<std::string> s = {"warp_id", "lane", "lane_id"};
  return s;
}

/// Identity that diverges within one warp (the scope SyncWarp synchronizes).
const std::set<std::string>& IntraWarpIdentity() {
  static const std::set<std::string> s = {"lane", "lane_id"};
  return s;
}

struct Range {
  int begin = -1;  ///< First token index (inclusive).
  int end = -1;    ///< One past last token index.
  bool Valid() const { return begin >= 0 && end >= begin; }
  bool Contains(int i) const { return i >= begin && i < end; }
  bool Contains(const Range& o) const {
    return begin <= o.begin && o.end <= end;
  }
  int Size() const { return end - begin; }
};

enum class LambdaKind { kWarp, kThread, kLane };

struct ForeachRegion {
  Range body;
  LambdaKind kind;
};

struct KernelRegion {
  Range body;
  std::string name;     ///< Function name; "<launch>" for Launch lambdas.
  int name_tok = -1;    ///< Token index of the defining name (not a call).
  bool block_sync = false;  ///< Body reaches a block-wide barrier.
};

struct ControlRegion {
  Range cond;  ///< Tokens of the controlling condition / loop header.
  Range body;  ///< Tokens of the guarded body (else bodies get own entry).
};

struct Suppression {
  int target_line = 0;  ///< Line of code the allow() applies to.
  std::string rule;
  int line = 0;  ///< Location of the comment itself, for stale reports.
  int col = 0;
  bool used = false;
};

class FileAnalysis {
 public:
  FileAnalysis(std::string path, const std::string& content,
               const AnalyzerOptions& options)
      : path_(std::move(path)), options_(options) {
    for (Token& t : Lex(content)) {
      if (t.kind == TokKind::kComment) {
        comments_.push_back(std::move(t));
      } else if (t.kind != TokKind::kDirective) {
        code_.push_back(std::move(t));
      }
    }
    BuildMatches();
    CollectSuppressions();
  }

  std::vector<Finding> Run() {
    CollectAnnotations();
    CollectLaunchLambdas();
    CollectForeachRegions();
    CollectObserverGuards();
    CollectControlRegions();
    CollectTaint();
    ResolveSyncCallGraph();

    if (RuleOn(kRuleSyncDivergence)) RunSyncDivergence();
    if (RuleOn(kRuleCrossBlockRace)) RunCrossBlockRace();
    if (RuleOn(kRuleClockPurity)) RunClockPurity();
    if (RuleOn(kRuleUncheckedStatus)) RunUncheckedStatus();
    if (RuleOn(kRuleHostConfinement)) RunHostConfinement();

    ApplySuppressions();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.col, a.rule) <
                       std::tie(b.line, b.col, b.rule);
              });
    return std::move(findings_);
  }

 private:
  // --- Token utilities -----------------------------------------------------

  bool RuleOn(const char* rule) const {
    return options_.rules.empty() || options_.rules.count(rule) > 0;
  }

  const Token& Tok(int i) const { return code_[i]; }
  int Count() const { return static_cast<int>(code_.size()); }
  bool IsTok(int i, const char* s) const {
    return i >= 0 && i < Count() && code_[i].Is(s);
  }
  bool IsIdentTok(int i, const char* s) const {
    return i >= 0 && i < Count() && code_[i].IsIdent(s);
  }
  bool IsAnyIdent(int i) const {
    return i >= 0 && i < Count() && code_[i].kind == TokKind::kIdent;
  }
  /// Matching bracket partner of the ( / [ / { or ) / ] / } at i, else -1.
  int Match(int i) const {
    return (i >= 0 && i < Count()) ? match_[i] : -1;
  }

  void BuildMatches() {
    match_.assign(code_.size(), -1);
    std::vector<int> stack;
    for (int i = 0; i < Count(); ++i) {
      const std::string& t = code_[i].text;
      if (t == "(" || t == "[" || t == "{") {
        stack.push_back(i);
      } else if (t == ")" || t == "]" || t == "}") {
        if (!stack.empty()) {
          match_[stack.back()] = i;
          match_[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  void Report(const char* rule, int tok, std::string message) {
    if (tok < 0 || tok >= Count()) return;
    const auto key = std::make_tuple(code_[tok].line, code_[tok].col,
                                     std::string(rule));
    if (!reported_.insert(key).second) return;
    findings_.push_back(
        {path_, code_[tok].line, code_[tok].col, rule, std::move(message)});
  }

  // --- Suppressions --------------------------------------------------------

  void CollectSuppressions() {
    std::set<int> code_lines;
    for (const Token& t : code_) code_lines.insert(t.line);
    for (const Token& c : comments_) {
      size_t at = 0;
      while ((at = c.text.find("simlint:allow(", at)) != std::string::npos) {
        const size_t open = at + std::string("simlint:allow(").size();
        const size_t close = c.text.find(')', open);
        if (close == std::string::npos) break;
        // A trailing comment suppresses its own line; a comment-only line
        // suppresses the next line that has code on it.
        int target = c.line;
        if (code_lines.count(target) == 0) {
          auto it = code_lines.upper_bound(target);
          if (it != code_lines.end()) target = *it;
        }
        std::stringstream rules(c.text.substr(open, close - open));
        std::string rule;
        while (std::getline(rules, rule, ',')) {
          const size_t b = rule.find_first_not_of(" \t");
          const size_t e = rule.find_last_not_of(" \t");
          if (b == std::string::npos) continue;
          rule = rule.substr(b, e - b + 1);
          // Malformed rule names (doc examples like `<rule>`) are not
          // suppressions at all.
          const bool well_formed =
              !rule.empty() &&
              rule.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz0123456789-") ==
                  std::string::npos;
          if (!well_formed) continue;
          suppressions_.push_back({target, rule, c.line, c.col, false});
        }
        at = close;
      }
    }
  }

  void ApplySuppressions() {
    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      bool suppressed = false;
      for (Suppression& s : suppressions_) {
        if (s.target_line == f.line && (s.rule == f.rule || s.rule == "all")) {
          s.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) kept.push_back(std::move(f));
    }
    findings_ = std::move(kept);
    if (!options_.strict_suppressions) return;
    for (const Suppression& s : suppressions_) {
      if (s.used) continue;
      findings_.push_back({path_, s.line, s.col, kRuleStaleSuppression,
                           "simlint:allow(" + s.rule +
                               ") matched no finding; remove the stale "
                               "suppression"});
    }
  }

  // --- Region discovery ----------------------------------------------------

  /// Finds the body of the entity an annotation macro precedes. Handles both
  /// functions (`KCORE_KERNEL void F(...) { ... }`, including out-of-line
  /// `Class::F`) and classes (`class KCORE_KERNEL Name ... { ... }` or the
  /// macro directly before the class-key). Returns the body range and the
  /// entity name via out-params; false when the annotation sits on a
  /// bodiless declaration.
  bool AnnotatedBody(int anno, Range* body, std::string* name,
                     int* name_tok) const {
    bool is_class = IsIdentTok(anno - 1, "class") ||
                    IsIdentTok(anno - 1, "struct");
    int last_ident = -1;
    int depth = 0;  // Parens/angle depth: a '(' at depth 0 starts params.
    for (int i = anno + 1; i < Count() && i < anno + 96; ++i) {
      const Token& t = code_[i];
      if (t.IsIdent("class") || t.IsIdent("struct")) is_class = true;
      if (t.Is("(") && !is_class) {
        if (last_ident < 0) return false;
        *name = code_[last_ident].text;
        *name_tok = last_ident;
        // Skip to the opening brace of the function body, stepping over the
        // parameter list and any trailing specifiers; a ';' first means
        // declaration only.
        int j = Match(i);
        if (j < 0) return false;
        for (++j; j < Count(); ++j) {
          if (code_[j].Is("{")) {
            const int close = Match(j);
            if (close < 0) return false;
            *body = {j + 1, close};
            return true;
          }
          if (code_[j].Is(";")) return false;
          if (code_[j].Is("(")) j = std::max(j, Match(j));  // noexcept(...)
        }
        return false;
      }
      if (t.Is("{")) {
        // Class body (or a function with no params reached a brace).
        const int close = Match(i);
        if (close < 0) return false;
        if (last_ident >= 0) {
          *name = code_[last_ident].text;
          *name_tok = last_ident;
        }
        *body = {i + 1, close};
        return true;
      }
      if (t.Is(";") && depth == 0) return false;
      if (t.kind == TokKind::kIdent && depth == 0) last_ident = i;
      if (t.Is("<")) ++depth;
      if (t.Is(">")) depth = std::max(0, depth - 1);
      if (t.Is(">>")) depth = std::max(0, depth - 2);
    }
    return false;
  }

  void CollectAnnotations() {
    for (int i = 0; i < Count(); ++i) {
      if (code_[i].kind != TokKind::kIdent) continue;
      const std::string& t = code_[i].text;
      if (t == "KCORE_HOST_ONLY") {
        // Record the annotated callee name so rule 5 also covers
        // file-local host-only helpers (fixtures, future drivers).
        for (int j = i + 1; j < Count() && j < i + 64; ++j) {
          if (code_[j].Is("(") && IsAnyIdent(j - 1)) {
            host_only_extra_.insert(code_[j - 1].text);
            break;
          }
          if (code_[j].Is(";") || code_[j].Is("{")) break;
        }
        continue;
      }
      if (t != "KCORE_KERNEL" && t != "KCORE_OBSERVER") continue;
      Range body;
      std::string name = t == "KCORE_KERNEL" ? "<kernel>" : "<observer>";
      int name_tok = -1;
      if (!AnnotatedBody(i, &body, &name, &name_tok)) continue;
      if (t == "KCORE_KERNEL") {
        kernels_.push_back({body, name, name_tok, false});
      } else {
        observers_.push_back({body.begin, body.end});
        observer_names_.insert(name);
      }
    }
  }

  /// Kernel lambdas passed to Device::Launch — the DSL's __global__ entry
  /// points. Each lambda body becomes an (anonymous) kernel region.
  void CollectLaunchLambdas() {
    for (int i = 0; i + 1 < Count(); ++i) {
      if (!code_[i].IsIdent("Launch") || !IsTok(i + 1, "(")) continue;
      if (i > 0 && !(IsTok(i - 1, ".") || IsTok(i - 1, "->"))) continue;
      const int close = Match(i + 1);
      if (close < 0) continue;
      for (int j = i + 2; j < close; ++j) {
        if (!code_[j].Is("[")) continue;
        if (!(IsTok(j - 1, "(") || IsTok(j - 1, ","))) continue;
        Range body = LambdaBody(j);
        if (!body.Valid()) continue;
        kernels_.push_back({body, "<launch>", -1, false});
        j = body.end;
      }
    }
  }

  /// Given the '[' of a lambda introducer, returns its body token range.
  Range LambdaBody(int intro) const {
    int j = Match(intro);  // closing ']'
    if (j < 0) return {};
    ++j;
    if (IsTok(j, "(")) {
      j = Match(j);
      if (j < 0) return {};
      ++j;
    }
    // Step over mutable / noexcept / -> ReturnType up to the body brace.
    for (int steps = 0; j < Count() && steps < 16; ++j, ++steps) {
      if (code_[j].Is("{")) {
        const int close = Match(j);
        if (close < 0) return {};
        return {j + 1, close};
      }
      if (code_[j].Is(";") || code_[j].Is(")")) return {};
      if (code_[j].Is("(")) {  // noexcept(...)
        j = Match(j);
        if (j < 0) return {};
      }
    }
    return {};
  }

  /// Parameter names of the lambda whose '[' is at `intro` (last identifier
  /// of each comma-separated declarator).
  std::vector<std::string> LambdaParams(int intro) const {
    std::vector<std::string> names;
    int j = Match(intro);
    if (j < 0 || !IsTok(j + 1, "(")) return names;
    const int open = j + 1, close = Match(open);
    if (close < 0) return names;
    int depth = 0;
    int last_ident = -1;
    for (int k = open + 1; k <= close; ++k) {
      const Token& t = code_[k];
      if (t.Is("(") || t.Is("[") || t.Is("<")) ++depth;
      if (t.Is(")") || t.Is("]") || t.Is(">")) --depth;
      if ((k == close || (depth == 0 && t.Is(","))) && last_ident >= 0) {
        names.push_back(code_[last_ident].text);
        last_ident = -1;
        continue;
      }
      if (depth == 0 && t.kind == TokKind::kIdent) last_ident = k;
    }
    return names;
  }

  void CollectForeachRegions() {
    struct Site {
      const char* name;
      LambdaKind kind;
    };
    static constexpr Site kSites[] = {{"ForEachWarp", LambdaKind::kWarp},
                                      {"ForEachThread", LambdaKind::kThread},
                                      {"ForEachLane", LambdaKind::kLane},
                                      {"BallotSync", LambdaKind::kLane}};
    for (int i = 0; i + 1 < Count(); ++i) {
      if (code_[i].kind != TokKind::kIdent || !IsTok(i + 1, "(")) continue;
      for (const Site& site : kSites) {
        if (code_[i].text != site.name) continue;
        const int close = Match(i + 1);
        if (close < 0) break;
        for (int j = i + 2; j < close; ++j) {
          if (!code_[j].Is("[")) continue;
          if (!(IsTok(j - 1, "(") || IsTok(j - 1, ","))) continue;
          Range body = LambdaBody(j);
          if (!body.Valid()) continue;
          foreach_.push_back({body, site.kind});
          for (const std::string& p : LambdaParams(j)) {
            lambda_params_[site.kind].insert(p);
          }
          break;
        }
        break;
      }
    }
  }

  /// Zero-cost-off observer guards: an else-less `if` whose condition tests a
  /// profiler / checker / trace handle for presence. The else-ful form (e.g.
  /// the checked/unchecked LaunchGrid dispatch in device.h) selects between
  /// two *mainline* paths and is deliberately excluded.
  void CollectObserverGuards() {
    for (int i = 0; i + 1 < Count(); ++i) {
      if (!code_[i].IsIdent("if") || !IsTok(i + 1, "(")) continue;
      const int cond_close = Match(i + 1);
      if (cond_close < 0) continue;
      bool observer = false, negated = false;
      for (int k = i + 2; k < cond_close; ++k) {
        if (code_[k].kind == TokKind::kIdent && IsObserverHandle(code_[k].text)) {
          observer = true;
          if (IsTok(k - 1, "!")) negated = true;
        }
        if (code_[k].Is("==")) negated = true;  // `== nullptr`: the off path.
      }
      if (!observer || negated) continue;
      int follower = -1;
      Range body = StatementOrBlockAfter(cond_close + 1, &follower);
      if (!body.Valid()) continue;
      if (IsIdentTok(follower, "else")) continue;
      observers_.push_back(body);
    }
  }

  static bool ContainsAny(const std::string& hay, const char* needle) {
    return hay.find(needle) != std::string::npos;
  }

  static bool IsObserverHandle(const std::string& name) {
    std::string low;
    low.reserve(name.size());
    for (char c : name) low += static_cast<char>(std::tolower(c));
    return ContainsAny(low, "profiler") || ContainsAny(low, "checker") ||
           low == "prof" || ContainsAny(low, "trace");
  }

  /// The body following a control header: `{ ... }` or a single statement
  /// (up to the ';' at nesting level zero). `follower` receives the index of
  /// the first token after the body, for else-lookahead.
  Range StatementOrBlockAfter(int i, int* follower = nullptr) const {
    if (follower != nullptr) *follower = -1;
    if (i < 0 || i >= Count()) return {};
    if (code_[i].Is("{")) {
      const int close = Match(i);
      if (close < 0) return {};
      if (follower != nullptr) *follower = close + 1;
      return {i + 1, close};
    }
    for (int j = i; j < Count(); ++j) {
      if (code_[j].Is("(") || code_[j].Is("[") || code_[j].Is("{")) {
        const int m = Match(j);
        if (m < 0) return {};
        j = m;
        continue;
      }
      if (code_[j].Is(";")) {
        if (follower != nullptr) *follower = j + 1;
        return {i, j + 1};
      }
      if (code_[j].Is("}")) return {};
    }
    return {};
  }

  void CollectControlRegions() {
    for (int i = 0; i + 1 < Count(); ++i) {
      if (code_[i].kind != TokKind::kIdent) continue;
      const std::string& kw = code_[i].text;
      if (kw != "if" && kw != "while" && kw != "for" && kw != "switch") {
        continue;
      }
      int open = i + 1;
      if (IsIdentTok(open, "constexpr")) ++open;  // `if constexpr` — uniform.
      if (!IsTok(open, "(")) continue;
      const int close = Match(open);
      if (close < 0) continue;
      const Range cond = {open + 1, close};
      int follower = -1;
      Range body = StatementOrBlockAfter(close + 1, &follower);
      if (!body.Valid()) continue;
      if (kw == "if" && IsIdentTok(open - 1, "constexpr")) continue;
      controls_.push_back({cond, body});
      // An else branch diverges on the same condition.
      if (kw == "if" && IsIdentTok(follower, "else") &&
          !IsIdentTok(follower + 1, "if")) {
        Range else_body = StatementOrBlockAfter(follower + 1);
        if (else_body.Valid()) controls_.push_back({cond, else_body});
      }
    }
  }

  // --- Taint (device-global pointers) --------------------------------------

  /// Objects known to be DeviceArrays (device-global storage): bound from
  /// Device::Alloc/AllocUninit via KCORE_ASSIGN_OR_RETURN, declared with an
  /// explicit DeviceArray<T> type, or following the repo's `d_` naming
  /// convention for device buffers. Distinguishes device-global `.data()`
  /// from per-block scratch (SharedAlloc-backed structs, std::array).
  void CollectDeviceObjects() {
    for (int i = 0; i + 2 < Count(); ++i) {
      if (code_[i].IsIdent("KCORE_ASSIGN_OR_RETURN") && IsTok(i + 1, "(")) {
        const int close = Match(i + 1);
        if (close < 0) continue;
        int comma = -1;
        bool alloc = false;
        for (int j = i + 2; j < close; ++j) {
          if (comma < 0 && code_[j].Is(",")) comma = j;
          if (code_[j].IsIdent("Alloc") || code_[j].IsIdent("AllocUninit")) {
            alloc = true;
          }
          if (code_[j].Is("(")) j = std::max(j, Match(j));
        }
        if (alloc && comma > i + 2 && IsAnyIdent(comma - 1)) {
          device_objects_.insert(code_[comma - 1].text);
        }
        continue;
      }
      if (code_[i].IsIdent("DeviceArray") && IsTok(i + 1, "<")) {
        // DeviceArray<T> name — the declarator after the closing angle.
        int depth = 0;
        for (int j = i + 1; j < Count() && j < i + 24; ++j) {
          if (code_[j].Is("<")) ++depth;
          if (code_[j].Is(">")) --depth;
          if (code_[j].Is(">>")) depth -= 2;
          if (depth <= 0 && j > i + 1) {
            int decl = j + 1;
            while (IsTok(decl, "&") || IsTok(decl, "*")) ++decl;
            if (IsAnyIdent(decl)) device_objects_.insert(code_[decl].text);
            break;
          }
        }
      }
    }
  }

  bool IsDeviceObject(const std::string& name) const {
    return device_objects_.count(name) > 0 || name.rfind("d_", 0) == 0;
  }

  /// Names bound to DeviceArray backing storage via `.data()`: the pointers
  /// every block of a launch can reach. Field and variable names are tracked
  /// textually, which is exactly the granularity the kernel param structs
  /// (KernelCtx et al.) preserve across the host/device boundary.
  void CollectTaint() {
    CollectDeviceObjects();
    for (int i = 2; i + 2 < Count(); ++i) {
      if (!code_[i].IsIdent("data")) continue;
      if (!(IsTok(i - 1, ".") || IsTok(i - 1, "->"))) continue;
      if (!IsTok(i + 1, "(") || Match(i + 1) != i + 2) continue;
      // Walk left over the object path to the '=' that binds the result,
      // noting whether any path component is a known device array.
      bool device = false;
      int k = i - 2;
      while (k >= 0) {
        const Token& t = code_[k];
        if (t.kind == TokKind::kIdent || t.Is(".") || t.Is("->")) {
          if (t.kind == TokKind::kIdent && IsDeviceObject(t.text)) {
            device = true;
          }
          --k;
          continue;
        }
        if (t.Is("]") || t.Is(")")) {
          const int m = Match(k);
          if (m < 0) break;
          k = m - 1;
          continue;
        }
        break;
      }
      if (device && k >= 0 && IsTok(k, "=") && IsAnyIdent(k - 1)) {
        tainted_.insert(code_[k - 1].text);
      }
    }
    // One-hop propagation: `a = b;` / `ctx.a = b;` with a short tainted rhs
    // (pointer copies into kernel param structs).
    for (int pass = 0; pass < 3; ++pass) {
      bool changed = false;
      for (int i = 1; i + 1 < Count(); ++i) {
        if (!code_[i].Is("=") || !IsAnyIdent(i - 1)) continue;
        int len = 0;
        bool taint_rhs = false;
        for (int j = i + 1; j < Count() && !code_[j].Is(";"); ++j, ++len) {
          if (len > 4) break;
          if (code_[j].kind == TokKind::kIdent && tainted_.count(code_[j].text)) {
            taint_rhs = true;
          }
        }
        if (taint_rhs && len <= 4 &&
            tainted_.insert(code_[i - 1].text).second) {
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  // --- Sync call graph ------------------------------------------------------

  bool IsCallOf(int i, const char* name) const {
    return IsIdentTok(i, name) && IsTok(i + 1, "(");
  }

  /// True at token i for a block barrier call: `block.Sync()` (any receiver)
  /// or a call to a function known to reach one.
  bool IsBlockCollective(int i) const {
    if (code_[i].kind != TokKind::kIdent || !IsTok(i + 1, "(")) return false;
    if (code_[i].text == "Sync" && (IsTok(i - 1, ".") || IsTok(i - 1, "->"))) {
      return true;
    }
    return sync_fns_.count(code_[i].text) > 0 &&
           !defined_names_.count(i);  // Call sites, not definitions.
  }

  void ResolveSyncCallGraph() {
    sync_fns_ = LibraryCollectives();
    for (const KernelRegion& k : kernels_) {
      if (k.name_tok >= 0) defined_names_.insert(k.name_tok);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (KernelRegion& k : kernels_) {
        if (k.block_sync) continue;
        for (int i = k.body.begin; i < k.body.end; ++i) {
          if (IsBlockCollective(i)) {
            k.block_sync = true;
            if (k.name != "<launch>" && sync_fns_.insert(k.name).second) {
              changed = true;
            }
            break;
          }
        }
      }
    }
  }

  // --- Rule 1: sync-divergence ---------------------------------------------

  const ForeachRegion* InnermostForeach(int i) const {
    const ForeachRegion* best = nullptr;
    for (const ForeachRegion& f : foreach_) {
      if (!f.body.Contains(i)) continue;
      if (best == nullptr || best->body.Contains(f.body)) best = &f;
    }
    return best;
  }

  /// Collects identity-derived local names for a kernel: seeds from the
  /// given accessor set, then a fixpoint over `lhs = ...seed...` bindings.
  std::set<std::string> DerivedIdentity(const KernelRegion& k,
                                        const std::set<std::string>& seed) const {
    std::set<std::string> ids = seed;
    for (int pass = 0; pass < 8; ++pass) {
      bool changed = false;
      for (int i = k.body.begin; i + 1 < k.body.end; ++i) {
        if (!code_[i].Is("=") || !IsAnyIdent(i - 1)) continue;
        if (IsTok(i - 2, ".") || IsTok(i - 2, "->")) continue;  // member write
        // Assignments inside ForEach lambdas are cross-lane/thread
        // reductions into a captured variable: uniform once the lambda
        // completes (divergence *inside* the lambda is caught by
        // containment, not by condition taint).
        if (InnermostForeach(i) != nullptr) continue;
        for (int j = i + 1; j < k.body.end; ++j) {
          if (code_[j].Is(";") || code_[j].Is("{")) break;
          if (code_[j].kind == TokKind::kIdent && ids.count(code_[j].text)) {
            if (ids.insert(code_[i - 1].text).second) changed = true;
            break;
          }
        }
      }
      if (!changed) break;
    }
    return ids;
  }

  bool CondDiverges(const Range& cond, const std::set<std::string>& ids) const {
    for (int i = cond.begin; i < cond.end; ++i) {
      if (code_[i].kind == TokKind::kIdent && ids.count(code_[i].text)) {
        return true;
      }
    }
    return false;
  }

  void RunSyncDivergence() {
    for (const KernelRegion& k : kernels_) {
      const std::set<std::string> block_ids =
          DerivedIdentity(k, IntraBlockIdentity());
      const std::set<std::string> warp_ids =
          DerivedIdentity(k, IntraWarpIdentity());
      for (int i = k.body.begin; i < k.body.end; ++i) {
        const bool collective = IsBlockCollective(i);
        const bool warp_sync = IsCallOf(i, "SyncWarp");
        if (!collective && !warp_sync) continue;
        const std::string what = code_[i].text;
        if (const ForeachRegion* f = InnermostForeach(i)) {
          if (collective) {
            const char* scope = f->kind == LambdaKind::kWarp    ? "per-warp"
                                : f->kind == LambdaKind::kThread ? "per-thread"
                                                                 : "per-lane";
            Report(kRuleSyncDivergence, i,
                   "block-wide barrier '" + what + "' inside " + scope +
                       " code: not all threads of the block can reach it "
                       "(synccheck UB; hoist to block scope)");
            continue;
          }
          if (f->kind == LambdaKind::kLane) {
            Report(kRuleSyncDivergence, i,
                   "'SyncWarp' inside per-lane code: a warp barrier must be "
                   "reached by every lane of the warp");
            continue;
          }
        }
        const std::set<std::string>& ids = collective ? block_ids : warp_ids;
        for (const ControlRegion& c : controls_) {
          if (!c.body.Contains(i) || !k.body.Contains(c.body.begin)) continue;
          if (CondDiverges(c.cond, ids)) {
            Report(kRuleSyncDivergence, i,
                   "barrier '" + what +
                       "' reached under identity-derived control flow "
                       "(condition at line " +
                       std::to_string(code_[c.cond.begin].line) +
                       " diverges between threads that must all arrive)");
            break;
          }
        }
      }
    }
  }

  // --- Rule 2: cross-block-race --------------------------------------------

  /// Last identifier of the lvalue path ending just before token j, for
  /// subscript stores (`p[i] op= v`) and member stores through pointers.
  int SubscriptBase(int j) const {
    if (!IsTok(j, "]")) return -1;
    const int open = Match(j);
    if (open <= 0) return -1;
    return IsAnyIdent(open - 1) ? open - 1 : -1;
  }

  void ReportRace(int base_tok, int op_tok) {
    Report(kRuleCrossBlockRace, op_tok,
           "non-atomic store to device-global '" + code_[base_tok].text +
               "' from kernel code: another block of the same launch may "
               "write it concurrently; use sim::GlobalStore/AtomicAdd "
               "(charged) instead of a plain write");
  }

  void RunCrossBlockRace() {
    static const std::set<std::string> kStores = {
        "=",  "+=", "-=", "*=", "/=",  "%=",
        "&=", "|=", "^=", "<<=", ">>="};
    for (const KernelRegion& k : kernels_) {
      for (int i = k.body.begin; i < k.body.end; ++i) {
        const std::string& t = code_[i].text;
        if (code_[i].kind == TokKind::kPunct && kStores.count(t)) {
          // `p[i] = v` — subscript store through a tainted base.
          int base = SubscriptBase(i - 1);
          if (base >= 0 && tainted_.count(code_[base].text)) {
            ReportRace(base, i);
            continue;
          }
          // `*p = v` — deref store (the '*' must be prefix, not a product).
          if (IsAnyIdent(i - 1) && IsTok(i - 2, "*") &&
              tainted_.count(code_[i - 1].text)) {
            const Token* before = i - 3 >= 0 ? &code_[i - 3] : nullptr;
            const bool prefix =
                before == nullptr ||
                (before->kind == TokKind::kPunct && !before->Is(")") &&
                 !before->Is("]"));
            if (prefix) ReportRace(i - 1, i);
          }
          continue;
        }
        if (t == "++" || t == "--") {
          // `++p[i]` / `p[i]++` increments.
          int base = SubscriptBase(i - 1);
          if (base < 0 && IsTok(i + 1, "]") == false) {
            // Prefix form: ++ path [ ... ]
            int j = i + 1;
            while (IsAnyIdent(j) &&
                   (IsTok(j + 1, ".") || IsTok(j + 1, "->"))) {
              j += 2;
            }
            if (IsAnyIdent(j) && IsTok(j + 1, "[")) base = j;
          }
          if (base >= 0 && tainted_.count(code_[base].text)) {
            ReportRace(base, i);
          }
        }
      }
    }
  }

  // --- Rule 3: modeled-clock-purity ----------------------------------------

  void RunClockPurity() {
    static const std::set<std::string> kWrites = {
        "=",  "+=", "-=", "*=", "/=",  "%=",
        "&=", "|=", "^=", "<<=", ">>="};
    for (const Range& obs : observers_) {
      for (int i = obs.begin; i < obs.end; ++i) {
        const Token& t = code_[i];
        if (t.kind == TokKind::kPunct &&
            (kWrites.count(t.text) || t.Is("++") || t.Is("--"))) {
          int target = -1;
          if (IsAnyIdent(i - 1)) {
            target = i - 1;  // counters_.barriers +=, *modeled_ns_ =
          } else {
            const int base = SubscriptBase(i - 1);
            if (base >= 0) target = base;
          }
          if (target < 0 && (t.Is("++") || t.Is("--")) && IsAnyIdent(i + 1)) {
            // Prefix ++counters.barriers: the charged field is the last
            // ident of the path that follows.
            int j = i + 1;
            while (IsAnyIdent(j) && (IsTok(j + 1, ".") || IsTok(j + 1, "->"))) {
              j += 2;
            }
            if (IsAnyIdent(j)) target = j;
          }
          if (target >= 0 && ChargedState().count(code_[target].text)) {
            Report(kRuleClockPurity, i,
                   "observer code mutates charged state '" +
                       code_[target].text +
                       "': profiler/checker/trace hooks must leave modeled "
                       "time bit-identical (read, never charge)");
          }
          continue;
        }
        if (t.kind == TokKind::kIdent && IsTok(i + 1, "(") &&
            ChargingCalls().count(t.text) && !defined_names_.count(i)) {
          Report(kRuleClockPurity, i,
                 "observer code calls charging path '" + t.text +
                     "': cost-model charges from a zero-cost-off hook would "
                     "shift modeled_ms when profiling toggles");
        }
      }
    }
  }

  // --- Rule 4: unchecked-status --------------------------------------------

  /// Recursively scans statements in [begin, end), diving into every brace
  /// block (including lambda bodies nested inside call arguments).
  void ScanStatements(int begin, int end) {
    int s = begin;
    int j = begin;
    while (j < end) {
      const Token& t = code_[j];
      if (t.Is("(") || t.Is("[")) {
        const int m = Match(j);
        if (m < 0 || m >= end) {
          ++j;
          continue;
        }
        // Brace blocks inside the group (lambda bodies) still hold
        // statements of their own.
        for (int k = j + 1; k < m; ++k) {
          if (code_[k].Is("{")) {
            const int bm = Match(k);
            if (bm < 0 || bm > m) break;
            ScanStatements(k + 1, bm);
            k = bm;
          }
        }
        j = m + 1;
        continue;
      }
      if (t.Is("{")) {
        const int m = Match(j);
        if (m < 0 || m >= end) {
          ++j;
          continue;
        }
        ScanStatements(j + 1, m);
        j = m + 1;
        s = j;
        continue;
      }
      if (t.Is(";")) {
        CheckDiscard(s, j);
        ++j;
        s = j;
        continue;
      }
      if (t.Is("}")) {
        ++j;
        s = j;
        continue;
      }
      ++j;
    }
  }

  /// Flags `expr.Name(...);` statements that drop a Status/StatusOr. The
  /// macro forms (KCORE_RETURN_IF_ERROR(...)) and capture forms (`auto s =`,
  /// `return`, `(void)`) all fail the shape test and pass.
  void CheckDiscard(int s, int semi) {
    if (s >= semi) return;
    // Explicit discard: (void)expr.
    if (IsTok(s, "(") && Match(s) == s + 2 && IsIdentTok(s + 1, "void")) return;
    // Collect top-level tokens (nested groups collapsed).
    std::vector<int> top;
    for (int j = s; j < semi; ++j) {
      top.push_back(j);
      if (code_[j].Is("(") || code_[j].Is("[") || code_[j].Is("{")) {
        const int m = Match(j);
        if (m < 0 || m >= semi) return;
        top.push_back(m);
        j = m;
      }
    }
    if (top.size() < 2) return;
    // Statement must end with a call group: ... Name ( ... )
    const int close = top.back();
    if (!code_[close].Is(")")) return;
    const int open = Match(close);
    if (open < 0) return;
    int name = open - 1;
    // Step back over explicit template arguments: Alloc<uint32_t>(...).
    if (IsTok(name, ">") || IsTok(name, ">>")) {
      int depth = 0;
      for (int j = name; j >= s; --j) {
        if (code_[j].Is(">")) ++depth;
        if (code_[j].Is(">>")) depth += 2;
        if (code_[j].Is("<")) {
          if (--depth == 0) {
            name = j - 1;
            break;
          }
        }
        if (j == s) return;
      }
    }
    if (!IsAnyIdent(name) || !StatusApis().count(code_[name].text)) return;
    // Everything before the callee must be a pure object path; any operator,
    // assignment, return or macro wrapper disqualifies the shape. Two
    // adjacent identifiers mean a *declaration* (`Status CopyFromHost(...);`
    // — same token shape as a call), not a discarded result.
    bool prev_ident = false;
    for (int idx : top) {
      if (idx > name) break;
      const Token& t = code_[idx];
      if (t.kind == TokKind::kIdent) {
        if (t.text == "return" || t.text == "co_return" || t.text == "throw" ||
            t.text == "delete" || t.text == "new") {
          return;
        }
        if (prev_ident) return;
        prev_ident = true;
        continue;
      }
      prev_ident = false;
      if (t.Is(".") || t.Is("->") || t.Is("::") || t.Is("*")) continue;
      if (idx < name) return;
    }
    Report(kRuleUncheckedStatus, name,
           "result of '" + code_[name].text +
               "' is discarded: Status/StatusOr must be checked "
               "(KCORE_RETURN_IF_ERROR / KCORE_ASSERT_OK) or explicitly "
               "voided with a simlint:allow");
  }

  void RunUncheckedStatus() { ScanStatements(0, Count()); }

  // --- Rule 5: host-confinement --------------------------------------------

  void RunHostConfinement() {
    for (const KernelRegion& k : kernels_) {
      for (int i = k.body.begin; i < k.body.end; ++i) {
        if (code_[i].kind != TokKind::kIdent || !IsTok(i + 1, "(")) continue;
        const bool member = IsTok(i - 1, ".") || IsTok(i - 1, "->");
        const std::string& name = code_[i].text;
        const bool listed = (member && HostOnlyCalls().count(name) > 0) ||
                            host_only_extra_.count(name) > 0;
        if (!listed || defined_names_.count(i)) continue;
        Report(kRuleHostConfinement, i,
               "host-only call '" + name +
                   "' inside kernel code: Device alloc/launch/clock/IO "
                   "methods may only run on the host driving thread "
                   "(device.h thread-compatibility contract)");
      }
    }
  }

  // --- State ---------------------------------------------------------------

  std::string path_;
  AnalyzerOptions options_;
  std::vector<Token> code_;
  std::vector<Token> comments_;
  std::vector<int> match_;

  std::vector<KernelRegion> kernels_;
  std::vector<Range> observers_;
  std::set<std::string> observer_names_;
  std::vector<ForeachRegion> foreach_;
  std::map<LambdaKind, std::set<std::string>> lambda_params_;
  std::vector<ControlRegion> controls_;
  std::set<std::string> device_objects_;
  std::set<std::string> tainted_;
  std::set<std::string> sync_fns_;
  std::set<std::string> host_only_extra_;
  std::set<int> defined_names_;

  std::vector<Suppression> suppressions_;
  std::vector<Finding> findings_;
  std::set<std::tuple<int, int, std::string>> reported_;
};

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> r = {
      kRuleSyncDivergence, kRuleCrossBlockRace, kRuleClockPurity,
      kRuleUncheckedStatus, kRuleHostConfinement};
  return r;
}

std::string Finding::Format() const {
  std::ostringstream os;
  os << file << ":" << line << ":" << col << ": warning: " << message << " ["
     << rule << "]";
  return os.str();
}

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& content,
                                   const AnalyzerOptions& options) {
  return FileAnalysis(path, content, options).Run();
}

std::vector<Finding> AnalyzeFile(const std::string& path,
                                 const AnalyzerOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return AnalyzeSource(path, buf.str(), options);
}

}  // namespace kcore::simlint
