#ifndef KCORE_TOOLS_SIMLINT_ANALYZER_H_
#define KCORE_TOOLS_SIMLINT_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

namespace kcore::simlint {

/// Rule identifiers, as spelled in diagnostics, suppression comments
/// (`// simlint:allow(rule)`), --rules filters, and the baseline file.
inline constexpr const char* kRuleSyncDivergence = "sync-divergence";
inline constexpr const char* kRuleCrossBlockRace = "cross-block-race";
inline constexpr const char* kRuleClockPurity = "modeled-clock-purity";
inline constexpr const char* kRuleUncheckedStatus = "unchecked-status";
inline constexpr const char* kRuleHostConfinement = "host-confinement";
/// Meta-rule: a simlint:allow comment that silenced nothing.
inline constexpr const char* kRuleStaleSuppression = "stale-suppression";

/// Every real rule name, in reporting order (excludes the meta-rule).
const std::vector<std::string>& AllRules();

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  /// "file:line:col: warning: message [rule]" — the gcc/clang diagnostic
  /// shape, so editors and CI log scrapers parse simlint output for free.
  std::string Format() const;
};

struct AnalyzerOptions {
  /// Report simlint:allow comments that matched no finding (meta-rule
  /// stale-suppression). On for CI and tests; off for exploratory runs on
  /// single files where the allow may target a rule that needs whole-file
  /// context to fire.
  bool strict_suppressions = true;
  /// When non-empty, only these rules run (stale-suppression always runs
  /// under strict_suppressions).
  std::set<std::string> rules;
};

/// Analyzes one translation unit (or header) given its contents. Pure: no
/// filesystem access, so tests feed synthetic sources directly. Findings are
/// sorted by line then column; suppressed findings are dropped.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& content,
                                   const AnalyzerOptions& options = {});

/// Reads `path` and analyzes it. Returns a single io-error pseudo-finding
/// (rule "io-error") when the file cannot be read.
std::vector<Finding> AnalyzeFile(const std::string& path,
                                 const AnalyzerOptions& options = {});

}  // namespace kcore::simlint

#endif  // KCORE_TOOLS_SIMLINT_ANALYZER_H_
