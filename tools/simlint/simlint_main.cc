// simlint — static analyzer for the cusim kernel DSL.
//
// A GPUVerify-style checker specialized to this repo's simulated-GPU
// programming model: it proves (token-structurally, over all paths) the
// invariants that simcheck and the differential fuzzer can only observe on
// executed schedules. See DESIGN.md "Static analysis" for the rule-by-rule
// mapping to real-CUDA tooling.
//
// Usage:
//   simlint [options] <file>...
//   simlint [options] -p <build-dir> --root <repo-root>
//
// With -p, the file list is derived from the exported compile_commands.json
// (plus headers under <root>/src), restricted to src/ and tools/ sources.
//
// Options:
//   --baseline <file>   Known-findings file: matching findings are reported
//                       as baselined (non-fatal); entries that match nothing
//                       are stale and fatal. The committed baseline
//                       (tools/simlint_baseline.txt) must stay empty.
//   --rules a,b,c       Run only the named rules.
//   --lax-suppressions  Do not report stale simlint:allow comments.
//   --list-files        Print the resolved file list and exit.
//   -q                  Suppress the per-finding lines (summary only).
//
// Exit codes: 0 clean, 1 findings or stale baseline/suppressions, 2 usage or
// IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace fs = std::filesystem;
using kcore::simlint::AnalyzerOptions;
using kcore::simlint::Finding;

namespace {

struct BaselineEntry {
  std::string rule;
  std::string path_suffix;
  int line = 0;  // Line in the baseline file, for stale reports.
  bool used = false;
};

std::vector<BaselineEntry> LoadBaseline(const std::string& path, bool* ok) {
  std::vector<BaselineEntry> entries;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  if (!*ok) return entries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    std::istringstream fields(line);
    BaselineEntry e;
    e.line = lineno;
    if (fields >> e.rule >> e.path_suffix) entries.push_back(e);
  }
  return entries;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Extracts the "file" values from compile_commands.json. The format is
/// machine-written (CMake), so a targeted scan beats a JSON dependency.
std::vector<std::string> CompileCommandFiles(const std::string& json) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  size_t at = 0;
  while ((at = json.find(key, at)) != std::string::npos) {
    const size_t colon = json.find(':', at + key.size());
    if (colon == std::string::npos) break;
    const size_t q1 = json.find('"', colon);
    if (q1 == std::string::npos) break;
    const size_t q2 = json.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    files.push_back(json.substr(q1 + 1, q2 - q1 - 1));
    at = q2 + 1;
  }
  return files;
}

/// The analysis scope under -p: sources under <root>/src and <root>/tools,
/// excluding simlint's own fixture corpus (those are *meant* to be broken).
bool InScope(const std::string& path, const std::string& root) {
  if (path.find("/simlint/fixtures/") != std::string::npos) return false;
  return path.rfind(root + "/src/", 0) == 0 ||
         path.rfind(root + "/tools/", 0) == 0;
}

int Usage() {
  std::cerr << "usage: simlint [--baseline f] [--rules a,b] "
               "[--lax-suppressions] [--list-files] [-q] "
               "(<file>... | -p <build-dir> --root <repo-root>)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string build_dir;
  std::string root;
  std::string baseline_path;
  AnalyzerOptions options;
  bool list_files = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-p") {
      const char* v = next();
      if (v == nullptr) return Usage();
      build_dir = v;
    } else if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return Usage();
      root = fs::absolute(v).lexically_normal().string();
      if (!root.empty() && root.back() == '/') root.pop_back();
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage();
      baseline_path = v;
    } else if (arg == "--rules") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::stringstream ss(v);
      std::string rule;
      while (std::getline(ss, rule, ',')) options.rules.insert(rule);
    } else if (arg == "--lax-suppressions") {
      options.strict_suppressions = false;
    } else if (arg == "--list-files") {
      list_files = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (!build_dir.empty()) {
    if (root.empty()) return Usage();
    const std::string cc_path = build_dir + "/compile_commands.json";
    std::ifstream in(cc_path);
    if (!in) {
      std::cerr << "simlint: cannot read " << cc_path
                << " (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::set<std::string> scoped;
    for (const std::string& f : CompileCommandFiles(buf.str())) {
      const std::string abs = fs::absolute(f).lexically_normal().string();
      if (InScope(abs, root)) scoped.insert(abs);
    }
    // compile_commands.json only lists .cc TUs; headers hold kernel-callable
    // collectives and the Device inline surface, so sweep them in too.
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root + "/src", ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().lexically_normal().string();
      if (EndsWith(p, ".h") && InScope(p, root)) scoped.insert(p);
    }
    files.assign(scoped.begin(), scoped.end());
  }

  if (files.empty()) return Usage();
  if (list_files) {
    for (const std::string& f : files) std::cout << f << "\n";
    return 0;
  }

  bool baseline_ok = true;
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path, &baseline_ok);
    if (!baseline_ok) {
      std::cerr << "simlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
  }

  int fatal = 0, baselined = 0;
  for (const std::string& f : files) {
    for (const Finding& finding : kcore::simlint::AnalyzeFile(f, options)) {
      if (finding.rule == "io-error") {
        std::cerr << "simlint: " << finding.file << ": " << finding.message
                  << "\n";
        return 2;
      }
      bool known = false;
      for (BaselineEntry& e : baseline) {
        if (e.rule == finding.rule && EndsWith(finding.file, e.path_suffix)) {
          e.used = true;
          known = true;
        }
      }
      if (known) {
        ++baselined;
        if (!quiet) {
          std::cout << finding.Format() << " (baselined)" << "\n";
        }
        continue;
      }
      ++fatal;
      if (!quiet) std::cout << finding.Format() << "\n";
    }
  }

  int stale = 0;
  for (const BaselineEntry& e : baseline) {
    if (e.used) continue;
    ++stale;
    std::cout << baseline_path << ":" << e.line
              << ": warning: stale baseline entry '" << e.rule << " "
              << e.path_suffix
              << "' matches no finding; delete it [stale-baseline]\n";
  }

  std::cout << "simlint: " << files.size() << " file(s), " << fatal
            << " finding(s)";
  if (baselined > 0) std::cout << ", " << baselined << " baselined";
  if (stale > 0) std::cout << ", " << stale << " stale baseline entr(ies)";
  std::cout << "\n";
  return (fatal > 0 || stale > 0) ? 1 : 0;
}
