#ifndef KCORE_TOOLS_SIMLINT_LEXER_H_
#define KCORE_TOOLS_SIMLINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kcore::simlint {

/// Token kinds for the simlint C++ lexer. The lexer is deliberately not a
/// parser: simlint's rules are defined over token patterns anchored by the
/// KCORE_* annotation macros and the cusim DSL's fixed vocabulary
/// (Launch / ForEachWarp / Sync / GlobalStore / ...), which a faithful
/// tokenizer resolves unambiguously without a full C++ grammar. Comments and
/// preprocessor directives are retained as tokens so suppression comments
/// (`// simlint:allow(rule)`) keep their source positions.
enum class TokKind : uint8_t {
  kIdent,      ///< Identifiers and keywords (no keyword table needed).
  kNumber,     ///< Integer / float literals, including ' separators.
  kString,     ///< "..." and R"delim(...)delim" literals.
  kChar,       ///< '...' literals.
  kPunct,      ///< Operators and punctuation, maximal munch ("<<=", "->").
  kComment,    ///< // and /* */ comments, text includes delimiters.
  kDirective,  ///< Whole preprocessor line(s), including continuations.
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character.
  int col = 0;   ///< 1-based column of the token's first character.

  bool Is(const char* s) const { return text == s; }
  bool IsIdent(const char* s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// Tokenizes C++ source. Never fails: unterminated constructs are closed at
/// end of input (the analyzer runs on in-progress trees, not just compiling
/// ones). Comments and directives are interleaved in source order.
std::vector<Token> Lex(const std::string& source);

}  // namespace kcore::simlint

#endif  // KCORE_TOOLS_SIMLINT_LEXER_H_
