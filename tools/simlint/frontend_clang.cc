// simlint-clang — optional Clang-LibTooling frontend for simlint.
//
// Built only when CMake is configured with -DKCORE_SIMLINT_CLANG=ON *and*
// find_package(Clang CONFIG) resolves (i.e. the clang C++ dev headers are
// installed — libclang-cpp runtime alone is not enough). The default build
// always ships the token-structural engine (analyzer.cc), which needs no
// LLVM at all; this frontend is the upgrade path to true AST/CFG precision:
//
//   * sync-divergence over the real CFG (dominator-based barrier-divergence
//     in the GPUVerify style) instead of lexical control regions,
//   * alias-aware DeviceArray taint instead of name-based taint,
//   * annotation-attribute driven region discovery (the KCORE_* macros
//     expand to __attribute__((annotate("kcore_*"))) under clang, so the
//     anchors survive into the AST — see src/cusim/annotations.h).
//
// The frontend reuses the shared rule vocabulary from analyzer.h so both
// engines emit identical rule names, suppressions, and baseline syntax.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analyzer.h"

#if !defined(KCORE_SIMLINT_HAVE_CLANG)
// Configured without clang dev libraries: compile to a loud stub so the
// target still links and explains itself instead of silently vanishing.
int main(int, char**) {
  std::cerr
      << "simlint-clang: built without clang dev libraries.\n"
         "Reconfigure with -DKCORE_SIMLINT_CLANG=ON on a machine with the\n"
         "clang CMake package installed (libclang-cpp *headers*, not just\n"
         "the runtime), or use the dependency-free `simlint` binary, which\n"
         "implements the same rules.\n";
  return 2;
}
#else

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

namespace {

using namespace clang;               // NOLINT
using namespace clang::ast_matchers; // NOLINT

llvm::cl::OptionCategory kSimlintCategory("simlint-clang options");

/// Reports calls to functions annotated kcore_host_only from within
/// functions/lambdas annotated kcore_kernel — the AST-accurate version of
/// the host-confinement rule. The other rules follow the same recipe
/// (annotation anchors + matchers) and are ported incrementally; until then
/// the token engine remains authoritative for CI.
class HostConfinementCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr) return;
    const auto& sm = *result.SourceManager;
    const auto loc = sm.getPresumedLoc(call->getBeginLoc());
    if (loc.isInvalid()) return;
    std::cout << loc.getFilename() << ":" << loc.getLine() << ":"
              << loc.getColumn()
              << ": warning: host-only call inside kernel code ["
              << kcore::simlint::kRuleHostConfinement << "]\n";
    ++findings_;
  }
  int findings() const { return findings_; }

 private:
  int findings_ = 0;
};

}  // namespace

int main(int argc, const char** argv) {
  auto options_parser =
      tooling::CommonOptionsParser::create(argc, argv, kSimlintCategory);
  if (!options_parser) {
    llvm::errs() << llvm::toString(options_parser.takeError());
    return 2;
  }
  tooling::ClangTool tool(options_parser->getCompilations(),
                          options_parser->getSourcePathList());

  HostConfinementCallback host_confinement;
  MatchFinder finder;
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAttr(attr::Annotate))),
               hasAncestor(functionDecl(hasAttr(attr::Annotate))))
          .bind("call"),
      &host_confinement);

  const int run_rc = tool.run(tooling::newFrontendActionFactory(&finder).get());
  if (run_rc != 0) return 2;
  return host_confinement.findings() > 0 ? 1 : 0;
}

#endif  // KCORE_SIMLINT_HAVE_CLANG
