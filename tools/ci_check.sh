#!/usr/bin/env bash
# CI gate: build release + asan and run the tier-1 suite on both.
#
#   tools/ci_check.sh            release + asan
#   tools/ci_check.sh --tsan     additionally run the tsan preset
#
# The asan leg runs the tier-1 tests twice: once plain and once with
# KCORE_SIMCHECK=1, so the simulated-device sanitizer and the host sanitizer
# watch the same kernels simultaneously (simcheck's containment is what
# keeps the deliberately-broken detector tests ASan-clean).
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
echo "=== release: tier-1 ==="
ctest --preset tier1
echo "=== release: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1

echo "=== asan: configure + build ==="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
echo "=== asan: tier-1 ==="
ctest --preset tier1-asan
echo "=== asan: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1-asan

if [[ "$run_tsan" == "1" ]]; then
  echo "=== tsan: configure + build ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  echo "=== tsan: tier-1 ==="
  ctest --preset tier1-tsan
fi

echo "ci_check: all gates passed"
