#!/usr/bin/env bash
# CI gate: build release + asan and run the tier-1 suite on both.
#
#   tools/ci_check.sh            release + asan
#   tools/ci_check.sh --tsan     additionally run the tsan preset
#
# The asan leg runs the tier-1 tests twice: once plain and once with
# KCORE_SIMCHECK=1, so the simulated-device sanitizer and the host sanitizer
# watch the same kernels simultaneously (simcheck's containment is what
# keeps the deliberately-broken detector tests ASan-clean).
#
# A tracing pass stacks KCORE_TRACE on top of the fault + simcheck
# combination over the same oracle suites: simprof must stay an observer —
# profiled runs still produce exact core numbers while the recovery and
# sanitizer machinery is active. A CLI smoke then checks --trace actually
# emits loadable chrome-trace JSON alongside --simcheck and --faults.
#
# Both legs additionally run a fault-recovery pass: KCORE_FAULTS attaches a
# representative fault plan (transient launch + copy failures and a one-shot
# degree-word bitflip) to every simulated device, and the oracle-equality
# suites must still produce exact core numbers — recovery has to be
# transparent to call sites that never heard of faults. Only those suites
# run under the plan (tests that assert exact launch/retry/checkpoint
# counters are meaningless with ambient faults), and the pass is stacked
# with KCORE_SIMCHECK=1 so checkpoint/rollback traffic is sanitizer-watched.
set -euo pipefail
cd "$(dirname "$0")/.."

# Transients recover via op retries; the bitflip via checkpoint rollback.
fault_spec='launch_fail@2;copy_fail@1;bitflip:launch=7,word=0,bit=3,seed=9'
# Suites that assert core numbers against the CPU oracle for the two
# *resilient* engines (all kernel variants, compaction on/off, 1-7 workers).
# The system baselines (Medusa/Gunrock/GSWITCH) surface faults as Status by
# design and are deliberately not run under the plan.
fault_suites='GpuPeelVariantTest.MatchesOracleOnFullSuite'
fault_suites+='|CompactionEquivalenceTest.CoreNumbersIdenticalOnAndOff'
fault_suites+='|MultiGpuWorkerCountTest.MatchesOracleOnFullSuite'
fault_suites+='|MultiGpuTest.AgreesWithSingleGpuKernels'
fault_suites+='|ExpandStrategyTest.MatchesOracleAcrossVariantsOnFullSuite'
fault_suites+='|ExpandTest.MultiGpuAutoMatchesOracleAndBinsPartition'

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "=== release: static analysis (simlint) ==="
# The kernel-DSL analyzer runs off the exported compile_commands.json and is
# gated by the committed baseline. The baseline is required to stay *empty*
# (only comments): new findings must be fixed or suppressed in-source with a
# reviewed `simlint:allow`, never parked in the baseline.
if grep -Ev '^[[:space:]]*(#|$)' tools/simlint_baseline.txt; then
  echo "tools/simlint_baseline.txt drifted: the baseline must stay empty;" \
    "fix the finding or add an in-source simlint:allow instead" >&2
  exit 1
fi
build/tools/simlint/simlint -p build --root . \
  --baseline tools/simlint_baseline.txt

echo "=== release: static analysis (clang-tidy) ==="
# Diagnostics differ across clang-tidy majors, so the CI leg only trusts the
# pinned major; anything else (or no install at all) is a loud skip, never a
# silent pass — the zero-dependency simlint leg above always gates.
tidy_pin_major=16
if command -v clang-tidy > /dev/null; then
  tidy_major="$(clang-tidy --version | sed -n 's/.*version \([0-9]*\).*/\1/p' |
    head -n1)"
  if [[ "$tidy_major" == "$tidy_pin_major" ]]; then
    cmake --build --preset release --target lint
  else
    echo "SKIP: clang-tidy major $tidy_major != pinned $tidy_pin_major;" \
      "install clang-tidy-$tidy_pin_major to run the tidy leg" >&2
  fi
else
  echo "SKIP: clang-tidy not installed; tidy leg not run" \
    "(simlint leg above still gates)" >&2
fi

echo "=== release: tier-1 ==="
ctest --preset tier1
echo "=== release: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1
echo "=== release: fault recovery (KCORE_FAULTS) ==="
KCORE_FAULTS="$fault_spec" ctest --preset tier1 -R "$fault_suites"
echo "=== release: fault recovery (KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
KCORE_FAULTS="$fault_spec" KCORE_SIMCHECK=1 ctest --preset tier1 -R "$fault_suites"
echo "=== release: tracing observer (KCORE_TRACE + KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
KCORE_TRACE=1 KCORE_FAULTS="$fault_spec" KCORE_SIMCHECK=1 \
  ctest --preset tier1 -R "$fault_suites"

echo "=== release: kcore_cli device-loss smoke ==="
smoke_graph="$(mktemp)"
expand_graph="$(mktemp)"
trace_json="$(mktemp)"
trap 'rm -f "$smoke_graph" "$expand_graph" "$trace_json"' EXIT
printf '0 1\n1 2\n2 3\n3 0\n0 2\n1 3\n' > "$smoke_graph"
# A lost device degrades to the CPU warm-start: the answer stays exact but
# the CLI reports it with exit 4 and a structured one-line error, which is
# exactly what this gate wants to see (a silent 0 here means degradation
# became invisible to scripts).
rc=0
build/tools/kcore_cli decompose "$smoke_graph" gpu \
  '--faults=device_lost@launch=4' --simcheck || rc=$?
if [[ "$rc" != 4 ]]; then
  echo "device-loss smoke: expected degraded-success exit 4, got $rc" >&2
  exit 1
fi

echo "=== release: kcore_cli --trace smoke (stacked with simcheck + faults) ==="
build/tools/kcore_cli decompose "$smoke_graph" gpu \
  '--faults=launch_fail@2' --simcheck "--trace=$trace_json" --prof-summary \
  | grep -q '^kernel ' || {
    echo "--prof-summary printed no kernel table" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" || {
  echo "--trace wrote no chrome-trace JSON" >&2; exit 1; }
grep -q '"name":"retry"' "$trace_json" || {
  echo "trace is missing the retry flow events" >&2; exit 1; }
for engine in multigpu vetga; do
  build/tools/kcore_cli decompose "$smoke_graph" "$engine" \
    "--trace=$trace_json" > /dev/null
  grep -q '"traceEvents"' "$trace_json" || {
    echo "--trace/$engine wrote no chrome-trace JSON" >&2; exit 1; }
done

echo "=== release: expansion-strategy legs (kcore_cli, simcheck on) ==="
# Deterministic skewed fixture: a K12 core, a 600-spoke hub on vertex 0,
# and a path tail. Under --expand=auto the spokes ride the thread bin and
# the hub the warp bin (600 < the 4096 block threshold); the block bin is
# exercised by the tier-1 suite with a lowered threshold.
{
  for ((i = 0; i < 12; i++)); do
    for ((j = i + 1; j < 12; j++)); do echo "$i $j"; done
  done
  for ((i = 12; i < 612; i++)); do echo "0 $i"; done
  for ((i = 612; i < 700; i++)); do echo "$i $((i + 1))"; done
} > "$expand_graph"
base_out="$(build/tools/kcore_cli decompose "$expand_graph" gpu)"
for strategy in thread warp block auto; do
  for engine in gpu multigpu; do
    out="$(build/tools/kcore_cli decompose "$expand_graph" "$engine" \
      "--expand=$strategy" --simcheck)"
    sig="$(grep -E '^(k_max|rounds)' <<< "$out")"
    want="$(grep -E '^(k_max|rounds)' <<< "$base_out")"
    if [[ "$engine" == gpu && "$sig" != "$want" ]]; then
      echo "expand=$strategy/$engine diverges from the default engine:" >&2
      diff <(echo "$want") <(echo "$sig") >&2 || true
      exit 1
    fi
    if [[ "$(grep -E '^k_max' <<< "$out")" != "$(grep -E '^k_max' <<< "$base_out")" ]]; then
      echo "expand=$strategy/$engine k_max diverges" >&2
      exit 1
    fi
  done
done

echo "=== release: expand=warp drift guard (zero-cost-when-off) ==="
# --expand=warp must dispatch to the *original* loop kernel. Two guards:
#  1. its bin meters prove no vertex left the warp path;
#  2. its modeled time matches the flagless default run. Modeled times carry
#     run-to-run scheduling jitter (cross-block cascade order moves work
#     between blocks), so the comparison uses a relative tolerance rather
#     than bit equality.
warp_out="$(build/tools/kcore_cli decompose "$expand_graph" gpu --expand=warp)"
grep -q '^bin_thread      0$' <<< "$warp_out" || {
  echo "expand=warp routed vertices to the thread bin" >&2; exit 1; }
grep -q '^bin_block       0$' <<< "$warp_out" || {
  echo "expand=warp routed vertices to the block bin" >&2; exit 1; }
base_ms="$(awk '/^modeled_ms/ {print $2}' <<< "$base_out")"
warp_ms="$(awk '/^modeled_ms/ {print $2}' <<< "$warp_out")"
awk -v a="$base_ms" -v b="$warp_ms" 'BEGIN {
  d = a > b ? a - b : b - a
  lo = a < b ? a : b
  if (d > 0.10 * lo + 0.005) {
    printf "expand=warp modeled_ms drifted from default: %s vs %s\n", a, b
    exit 1
  }
}'

echo "=== release: single-k legs (--k, gpu vs xiang, stacked with simcheck + faults) ==="
# Direct mining on both engines must agree on the k-core size for every k,
# from the trivial 1-core through the K12 clique core to past-degeneracy.
for k in 1 2 5 11 12 40; do
  gpu_core="$(build/tools/kcore_cli decompose "$expand_graph" gpu "--k=$k" \
    --simcheck | awk '/^core_size/ {print $2}')"
  xiang_core="$(build/tools/kcore_cli decompose "$expand_graph" xiang "--k=$k" \
    | awk '/^core_size/ {print $2}')"
  if [[ -z "$gpu_core" || "$gpu_core" != "$xiang_core" ]]; then
    echo "--k=$k: gpu core_size '$gpu_core' != xiang '$xiang_core'" >&2
    exit 1
  fi
done
# A transient launch failure is retried away without degrading; a dead
# device degrades to the CPU cascade. Both answers must stay exact.
retried="$(build/tools/kcore_cli decompose "$expand_graph" gpu --k=5 \
  '--faults=launch_fail@1' --simcheck)"
grep -q '^core_size    12$' <<< "$retried" || {
  echo "--k=5 under a transient launch failure lost the K12 core" >&2; exit 1; }
grep -q '^degraded            no' <<< "$retried" || {
  echo "--k=5 degraded on a retryable fault" >&2; exit 1; }
rc=0
lost="$(build/tools/kcore_cli decompose "$expand_graph" gpu --k=5 \
  '--faults=device_lost@launch=1' --simcheck)" || rc=$?
if [[ "$rc" != 4 ]]; then
  echo "--k=5 after device loss: expected degraded-success exit 4, got $rc" >&2
  exit 1
fi
grep -q '^core_size    12$' <<< "$lost" || {
  echo "--k=5 after device loss lost the K12 core" >&2; exit 1; }
grep -q 'answered by CPU xiang' <<< "$lost" || {
  echo "--k=5 after device loss did not report the CPU fallback" >&2; exit 1; }
# Malformed queries and unsupported engines are rejected up front.
for bad in '--k=0' '--k=abc' '--k='; do
  if build/tools/kcore_cli decompose "$expand_graph" gpu "$bad" 2>/dev/null; then
    echo "kcore_cli accepted $bad" >&2; exit 1
  fi
done
if build/tools/kcore_cli decompose "$expand_graph" bz --k=2 2>/dev/null; then
  echo "kcore_cli accepted --k on a full-decomposition-only engine" >&2
  exit 1
fi

echo "=== release: renumber legs (gpu + multigpu, stacked with simcheck + faults) ==="
# Degree-ordered renumbering is a pure relabeling: both engines must land on
# the flagless k_max/rounds, with simcheck watching and (on gpu) the
# representative fault plan exercising checkpoint/rollback on the
# renumbered graph.
want_sig="$(grep -E '^(k_max|rounds)' <<< "$base_out")"
for engine in gpu multigpu; do
  renum_out="$(build/tools/kcore_cli decompose "$expand_graph" "$engine" \
    --renumber --simcheck)"
  if [[ "$(grep -E '^(k_max|rounds)' <<< "$renum_out")" != "$want_sig" ]]; then
    echo "--renumber/$engine diverges from the flagless run" >&2
    exit 1
  fi
  grep -q '^renumber        degree-ordered' <<< "$renum_out" || {
    echo "--renumber/$engine did not report the renumber section" >&2; exit 1; }
done
renum_faulted="$(build/tools/kcore_cli decompose "$expand_graph" gpu \
  --renumber --simcheck "--faults=$fault_spec")"
if [[ "$(grep -E '^(k_max|rounds)' <<< "$renum_faulted")" != "$want_sig" ]]; then
  echo "--renumber under the fault plan diverges from the flagless run" >&2
  exit 1
fi

echo "=== release: fused-path drift guard (--fuse) ==="
# Fusion must not move the results (k_max/rounds identical), must actually
# cut launches below the unfused two-per-round floor, and must not drift
# the modeled time upward (same relative tolerance as the warp guard).
fused_out="$(build/tools/kcore_cli decompose "$expand_graph" gpu --fuse --simcheck)"
if [[ "$(grep -E '^(k_max|rounds)' <<< "$fused_out")" != "$want_sig" ]]; then
  echo "--fuse diverges from the flagless run" >&2
  exit 1
fi
fused_rounds="$(awk '/^rounds/ {print $2}' <<< "$fused_out")"
fused_launches="$(awk '/^kernel_launches/ {print $2}' <<< "$fused_out")"
if (( fused_launches >= 2 * fused_rounds )); then
  echo "--fuse did not cut launches: $fused_launches launches over" \
    "$fused_rounds rounds" >&2
  exit 1
fi
fused_ms="$(awk '/^modeled_ms/ {print $2}' <<< "$fused_out")"
awk -v a="$base_ms" -v b="$fused_ms" 'BEGIN {
  if (b > a * 1.10 + 0.005) {
    printf "--fuse modeled_ms drifted above default: %s vs %s\n", b, a
    exit 1
  }
}'

echo "=== release: deadline smoke (--timeout-ms) ==="
# An already-expired deadline must stop the run at the first round boundary
# with exit 1 and a structured DeadlineExceeded; a generous one must not
# perturb the answer.
rc=0
build/tools/kcore_cli decompose "$expand_graph" gpu --timeout-ms=0 \
  2> /dev/null || rc=$?
if [[ "$rc" != 1 ]]; then
  echo "--timeout-ms=0: expected DeadlineExceeded exit 1, got $rc" >&2
  exit 1
fi
timed_out="$(build/tools/kcore_cli decompose "$expand_graph" gpu \
  --timeout-ms=60000)"
if [[ "$(grep -E '^(k_max|rounds)' <<< "$timed_out")" != "$want_sig" ]]; then
  echo "--timeout-ms=60000 perturbed the flagless answer" >&2
  exit 1
fi

echo "=== release: chaos soak (kcore_soak, KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
# A seeded mixed workload (point queries, single-k mining, full decomposes;
# slices cancelled and deadline-expired) through the long-lived serving
# loop, with an ambient fault plan — transient launch rejections plus
# outright device loss — attached to every per-request device and the
# simulated-device sanitizer watching. Every completed answer is verified
# bit-for-bit against the BZ oracle inside the harness; a mismatch, silent
# drop or unresolved future exits 3. Request count is env-overridable so
# nightly runs can soak long (the committed BENCH_serving.json run is 6000
# requests; this gate defaults to a quick 400).
soak_requests="${KCORE_SOAK_REQUESTS:-400}"
KCORE_FAULTS='launch_fail:p=0.01,seed=5;device_lost@launch=25' \
  KCORE_SIMCHECK=1 \
  build/tools/kcore_soak --requests="$soak_requests" --seed=3 \
  --cancel=0.02 --deadline=0.02

echo "=== release: kcore_cli --updates smoke (stacked with simcheck + faults) ==="
# Streams a mixed insert/delete batch sequence through the GPU-resident
# incremental engine; the CLI itself verifies the maintained coreness
# bit-for-bit against a fresh BZ of the final graph ("verify ok (bz)"),
# so this gate just needs the run to survive transient faults cleanly.
updates_stream="$(mktemp)"
trap 'rm -f "$smoke_graph" "$expand_graph" "$trace_json" "$updates_stream"' EXIT
printf -- '- 0 2\n- 1 3\n+ 0 2\n+ 1 3\n- 2 3\n' > "$updates_stream"
build/tools/kcore_cli decompose "$smoke_graph" gpu \
  "--updates=$updates_stream" --update-batch=2 --simcheck \
  '--faults=launch_fail@3' | grep -q '^verify       ok (bz)' || {
    echo "--updates smoke: incremental verify line missing" >&2; exit 1; }

echo "=== release: mutating chaos soak (update slice + KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
# Same chaos harness with the mutation slice engaged: a fraction of the
# workload is edge-update batches through the incremental engine, and the
# harness checks every committed epoch's coreness against the BZ oracle of
# the mutated graph (plus the usual zero-mismatch/zero-drop gates).
KCORE_FAULTS='launch_fail:p=0.01,seed=5;device_lost@launch=25' \
  KCORE_SIMCHECK=1 \
  build/tools/kcore_soak --requests="$soak_requests" --seed=31 \
  --update-fraction=0.15 --update-batch=4 --cancel=0.02 --deadline=0.02

echo "=== release: cluster legs (kcore_cli, 2 strategies, KCORE_SIMCHECK=1) ==="
# The simulated multi-node engine must land on the flagless single-GPU
# answer under both a mass-balancing and a cut-minimizing partition, with
# the simulated-device sanitizer watching every node's devices.
want_kmax="$(grep -E '^k_max' <<< "$base_out")"
for strategy in degree edgecut; do
  cluster_out="$(KCORE_SIMCHECK=1 build/tools/kcore_cli decompose \
    "$expand_graph" cluster --nodes=3 "--partition=$strategy" --simcheck)"
  if [[ "$(grep -E '^k_max' <<< "$cluster_out")" != "$want_kmax" ]]; then
    echo "cluster/--partition=$strategy diverges from the flagless run" >&2
    exit 1
  fi
  grep -q "^partition       $strategy" <<< "$cluster_out" || {
    echo "cluster/--partition=$strategy did not report its strategy" >&2
    exit 1; }
  grep -q '^simcheck     clean' <<< "$cluster_out" || {
    echo "cluster/--partition=$strategy simcheck not clean" >&2; exit 1; }
done

echo "=== release: cluster node-loss leg (degraded exit 4) ==="
# --faults attaches the device-loss plan to every node, so the whole
# cluster dies and the run must finish on the CPU fallback: exact answer,
# structured DegradedSuccess, exit 4. A silent 0 here means node loss
# became invisible to scripts; a nonzero other than 4 means the fallback
# lost the answer.
rc=0
cluster_lost="$(build/tools/kcore_cli decompose "$expand_graph" cluster \
  --nodes=2 '--faults=device_lost@launch=3' --simcheck)" || rc=$?
if [[ "$rc" != 4 ]]; then
  echo "cluster node-loss: expected degraded-success exit 4, got $rc" >&2
  exit 1
fi
if [[ "$(grep -E '^k_max' <<< "$cluster_lost")" != "$want_kmax" ]]; then
  echo "cluster node-loss: degraded answer diverges from the flagless run" >&2
  exit 1
fi
grep -q '^degraded            yes' <<< "$cluster_lost" || {
  echo "cluster node-loss: recovery summary missing degraded marker" >&2
  exit 1; }

echo "=== asan: configure + build ==="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
echo "=== asan: tier-1 ==="
ctest --preset tier1-asan
echo "=== asan: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1-asan
echo "=== asan: fault recovery (KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
KCORE_FAULTS="$fault_spec" KCORE_SIMCHECK=1 ctest --preset tier1-asan -R "$fault_suites"

if [[ "$run_tsan" == "1" ]]; then
  echo "=== tsan: configure + build ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  echo "=== tsan: tier-1 ==="
  ctest --preset tier1-tsan
fi

echo "ci_check: all gates passed"
