#!/usr/bin/env bash
# CI gate: build release + asan and run the tier-1 suite on both.
#
#   tools/ci_check.sh            release + asan
#   tools/ci_check.sh --tsan     additionally run the tsan preset
#
# The asan leg runs the tier-1 tests twice: once plain and once with
# KCORE_SIMCHECK=1, so the simulated-device sanitizer and the host sanitizer
# watch the same kernels simultaneously (simcheck's containment is what
# keeps the deliberately-broken detector tests ASan-clean).
#
# Both legs additionally run a fault-recovery pass: KCORE_FAULTS attaches a
# representative fault plan (transient launch + copy failures and a one-shot
# degree-word bitflip) to every simulated device, and the oracle-equality
# suites must still produce exact core numbers — recovery has to be
# transparent to call sites that never heard of faults. Only those suites
# run under the plan (tests that assert exact launch/retry/checkpoint
# counters are meaningless with ambient faults), and the pass is stacked
# with KCORE_SIMCHECK=1 so checkpoint/rollback traffic is sanitizer-watched.
set -euo pipefail
cd "$(dirname "$0")/.."

# Transients recover via op retries; the bitflip via checkpoint rollback.
fault_spec='launch_fail@2;copy_fail@1;bitflip:launch=7,word=0,bit=3,seed=9'
# Suites that assert core numbers against the CPU oracle for the two
# *resilient* engines (all kernel variants, compaction on/off, 1-7 workers).
# The system baselines (Medusa/Gunrock/GSWITCH) surface faults as Status by
# design and are deliberately not run under the plan.
fault_suites='GpuPeelVariantTest.MatchesOracleOnFullSuite'
fault_suites+='|CompactionEquivalenceTest.CoreNumbersIdenticalOnAndOff'
fault_suites+='|MultiGpuWorkerCountTest.MatchesOracleOnFullSuite'
fault_suites+='|MultiGpuTest.AgreesWithSingleGpuKernels'

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
echo "=== release: tier-1 ==="
ctest --preset tier1
echo "=== release: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1
echo "=== release: fault recovery (KCORE_FAULTS) ==="
KCORE_FAULTS="$fault_spec" ctest --preset tier1 -R "$fault_suites"
echo "=== release: fault recovery (KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
KCORE_FAULTS="$fault_spec" KCORE_SIMCHECK=1 ctest --preset tier1 -R "$fault_suites"

echo "=== release: kcore_cli device-loss smoke ==="
smoke_graph="$(mktemp)"
trap 'rm -f "$smoke_graph"' EXIT
printf '0 1\n1 2\n2 3\n3 0\n0 2\n1 3\n' > "$smoke_graph"
build/tools/kcore_cli decompose "$smoke_graph" gpu \
  '--faults=device_lost@launch=4' --simcheck

echo "=== asan: configure + build ==="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
echo "=== asan: tier-1 ==="
ctest --preset tier1-asan
echo "=== asan: tier-1 (KCORE_SIMCHECK=1) ==="
KCORE_SIMCHECK=1 ctest --preset tier1-asan
echo "=== asan: fault recovery (KCORE_FAULTS + KCORE_SIMCHECK=1) ==="
KCORE_FAULTS="$fault_spec" KCORE_SIMCHECK=1 ctest --preset tier1-asan -R "$fault_suites"

if [[ "$run_tsan" == "1" ]]; then
  echo "=== tsan: configure + build ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  echo "=== tsan: tier-1 ==="
  ctest --preset tier1-tsan
fi

echo "ci_check: all gates passed"
